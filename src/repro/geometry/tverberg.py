"""Tverberg partitions and Tverberg points.

Tverberg's theorem (Theorem 2 in the paper) states that any multiset of at
least ``(d+1)f + 1`` points in ``R^d`` can be partitioned into ``f + 1``
non-empty parts whose convex hulls share a common point.  The shared points
are *Tverberg points*; the paper's Lemma 1 uses their existence to show that
the safe area ``Gamma(Y)`` is non-empty.

As the paper notes, no polynomial-time algorithm is known for computing
Tverberg points in general dimension.  This module therefore provides:

* :func:`find_tverberg_partition` — exact search over multiset partitions,
  feasible for the small instances used in tests and for the paper's Figure 1;
* :func:`verify_tverberg_partition` — an LP check that a candidate partition's
  hulls really do intersect, returning a witness point;
* :func:`radon_partition` — the classical ``f = 1`` special case (Radon's
  theorem), solved directly from a null-space vector, which is both a useful
  primitive and a fast path for the partition search;
* :func:`figure1_instance` — the heptagon instance from the paper's Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.convex_hull import hulls_intersection_point
from repro.geometry.multisets import PointMultiset, iter_index_partitions
from repro.geometry.points import as_cloud

__all__ = [
    "TverbergPartition",
    "tverberg_points_required",
    "radon_partition",
    "find_tverberg_partition",
    "verify_tverberg_partition",
    "figure1_instance",
]


def tverberg_points_required(dimension: int, parts: int) -> int:
    """Return the number of points Tverberg's theorem requires for ``parts`` blocks.

    For a partition into ``r`` parts in ``R^d`` the theorem needs
    ``(d + 1)(r - 1) + 1`` points; with ``r = f + 1`` this is the paper's
    ``(d + 1) f + 1``.
    """
    if dimension < 1:
        raise GeometryError("dimension must be at least 1")
    if parts < 1:
        raise GeometryError("a Tverberg partition needs at least one part")
    return (dimension + 1) * (parts - 1) + 1


@dataclass(frozen=True)
class TverbergPartition:
    """A verified Tverberg partition of a point multiset.

    Attributes:
        multiset: the partitioned points.
        blocks: tuple of index-tuples, one per part (indices into ``multiset``).
        witness: a point contained in the convex hull of every part.
    """

    multiset: PointMultiset
    blocks: tuple[tuple[int, ...], ...]
    witness: np.ndarray

    @property
    def parts(self) -> int:
        """Number of blocks in the partition."""
        return len(self.blocks)

    def block_points(self, block_index: int) -> PointMultiset:
        """Return the points of one block as a multiset."""
        return self.multiset.select(self.blocks[block_index])

    def block_clouds(self) -> list[np.ndarray]:
        """Return the raw point arrays of every block."""
        return [self.block_points(index).points for index in range(self.parts)]


def radon_partition(points: PointMultiset | np.ndarray | Sequence[Sequence[float]]) -> TverbergPartition:
    """Return a Radon partition of ``d + 2`` (or more) points in ``R^d``.

    Radon's theorem is the ``parts = 2`` case of Tverberg's theorem: any
    ``d + 2`` points can be split into two sets whose hulls intersect.  The
    partition is obtained from a non-trivial affine dependence: the positive
    and negative coefficients define the two blocks and the normalised
    positive part gives the witness point directly — no LP needed.
    """
    multiset = points if isinstance(points, PointMultiset) else PointMultiset(points)
    cloud = multiset.points
    count, dimension = cloud.shape
    if count < dimension + 2:
        raise GeometryError(
            f"Radon's theorem needs at least d + 2 = {dimension + 2} points, got {count}"
        )

    # Affine dependence: find non-zero c with sum(c) = 0 and cloud.T @ c = 0.
    system = np.vstack([cloud.T, np.ones((1, count))])
    _, _, vh = np.linalg.svd(system)
    coefficients = vh[-1]
    if np.allclose(coefficients, 0.0):
        raise GeometryError("failed to find an affine dependence among the points")

    positive = coefficients > 1e-12
    negative = coefficients < -1e-12
    if not positive.any() or not negative.any():
        # Degenerate numerical case (e.g. duplicated points); fall back to search.
        partition = find_tverberg_partition(multiset, parts=2)
        if partition is None:
            raise GeometryError("failed to find a Radon partition")
        return partition

    positive_weight = float(coefficients[positive].sum())
    witness = (coefficients[positive] @ cloud[positive]) / positive_weight

    block_positive = tuple(int(index) for index in np.nonzero(positive)[0])
    block_rest = tuple(int(index) for index in np.nonzero(~positive)[0])
    return TverbergPartition(
        multiset=multiset,
        blocks=(block_positive, block_rest),
        witness=np.asarray(witness, dtype=float),
    )


def verify_tverberg_partition(
    multiset: PointMultiset,
    blocks: Sequence[Sequence[int]],
) -> np.ndarray | None:
    """Return a witness point if the blocks' hulls intersect, else ``None``.

    Also validates that the blocks really form a partition of the multiset's
    index set; a malformed partition raises :class:`GeometryError`.
    """
    flattened = sorted(index for block in blocks for index in block)
    if flattened != list(range(len(multiset))):
        raise GeometryError("blocks do not form a partition of the multiset indices")
    if any(len(block) == 0 for block in blocks):
        raise GeometryError("Tverberg partition blocks must be non-empty")
    clouds = [multiset.select(list(block)).points for block in blocks]
    return hulls_intersection_point(clouds)


def find_tverberg_partition(
    points: PointMultiset | np.ndarray | Sequence[Sequence[float]],
    parts: int,
) -> TverbergPartition | None:
    """Search for a Tverberg partition of ``points`` into ``parts`` blocks.

    Exhaustive over set partitions (exponential), so intended for the small
    instances used in tests, in Figure 1, and for cross-validating the LP-based
    safe-area computation.  Returns ``None`` only when no partition of the
    requested size has intersecting hulls — which Tverberg's theorem rules out
    whenever ``len(points) >= tverberg_points_required(d, parts)``.
    """
    multiset = points if isinstance(points, PointMultiset) else PointMultiset(points)
    if parts < 1:
        raise GeometryError("a Tverberg partition needs at least one part")
    if parts == 1:
        witness = multiset.centroid()
        return TverbergPartition(multiset, (tuple(range(len(multiset))),), witness)
    if parts > len(multiset):
        return None

    if parts == 2 and len(multiset) >= multiset.dimension + 2:
        try:
            return radon_partition(multiset)
        except GeometryError:
            pass

    best: TverbergPartition | None = None
    for blocks in iter_index_partitions(len(multiset), parts):
        witness = verify_tverberg_partition(multiset, blocks)
        if witness is not None:
            best = TverbergPartition(multiset=multiset, blocks=blocks, witness=witness)
            break
    return best


def figure1_instance() -> tuple[PointMultiset, int]:
    """Return the paper's Figure 1 instance: a regular heptagon in the plane.

    Seven points (``n = 7``) in dimension ``d = 2`` with ``f = 2`` satisfy
    ``n = (d + 1) f + 1``, so Tverberg's theorem guarantees a partition into
    ``f + 1 = 3`` parts with intersecting hulls.  Returns the multiset and the
    number of parts (3).
    """
    angles = 2.0 * np.pi * np.arange(7) / 7.0
    cloud = np.column_stack([np.cos(angles), np.sin(angles)])
    return PointMultiset(as_cloud(cloud)), 3
