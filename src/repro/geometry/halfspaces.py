"""Halfspace representations of convex polytopes.

The LP-based predicates in :mod:`repro.geometry.convex_hull` work directly on
vertex (V-) representations.  A handful of places — notably the analysis
helpers that describe *where* the safe area ``Gamma`` lives, and the separating
hyperplane certificates used in tests of the impossibility constructions —
are more naturally expressed with halfspaces (H-representation):

    { x : normal . x <= offset }.

This module provides a small :class:`Halfspace` / :class:`HalfspaceRegion`
pair, conversion from point clouds via separating-hyperplane LPs, and
emptiness / membership tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import GeometryError
from repro.geometry.linprog import feasibility_program, solve_linear_program
from repro.geometry.points import as_cloud, as_point

__all__ = ["Halfspace", "HalfspaceRegion", "separating_hyperplane"]

_DEFAULT_TOLERANCE = 1e-7


@dataclass(frozen=True)
class Halfspace:
    """The closed halfspace ``{ x : normal . x <= offset }``."""

    normal: np.ndarray
    offset: float

    def __init__(self, normal: Sequence[float], offset: float) -> None:
        normal = as_point(normal)
        if np.allclose(normal, 0.0):
            raise GeometryError("a halfspace normal must be non-zero")
        object.__setattr__(self, "normal", normal)
        object.__setattr__(self, "offset", float(offset))
        self.normal.setflags(write=False)

    @property
    def dimension(self) -> int:
        """Ambient dimension."""
        return int(self.normal.shape[0])

    def contains(self, point: Sequence[float], tolerance: float = _DEFAULT_TOLERANCE) -> bool:
        """Return True when ``point`` satisfies the halfspace inequality."""
        point = as_point(point, dimension=self.dimension)
        return float(self.normal @ point) <= self.offset + tolerance

    def margin(self, point: Sequence[float]) -> float:
        """Return ``offset - normal . point`` (positive inside, negative outside)."""
        point = as_point(point, dimension=self.dimension)
        return self.offset - float(self.normal @ point)

    def flipped(self) -> "Halfspace":
        """Return the complementary halfspace ``{ x : -normal . x <= -offset }``."""
        return Halfspace(-self.normal, -self.offset)


@dataclass(frozen=True)
class HalfspaceRegion:
    """A convex region given as the intersection of finitely many halfspaces."""

    halfspaces: tuple[Halfspace, ...]

    def __init__(self, halfspaces: Iterable[Halfspace]) -> None:
        halfspaces = tuple(halfspaces)
        if not halfspaces:
            raise GeometryError("a halfspace region needs at least one halfspace")
        dimensions = {halfspace.dimension for halfspace in halfspaces}
        if len(dimensions) != 1:
            raise GeometryError(f"halfspaces live in different dimensions: {sorted(dimensions)}")
        object.__setattr__(self, "halfspaces", halfspaces)

    @property
    def dimension(self) -> int:
        """Ambient dimension."""
        return self.halfspaces[0].dimension

    def as_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(A, b)`` such that the region is ``{ x : A x <= b }``."""
        matrix = np.vstack([halfspace.normal for halfspace in self.halfspaces])
        rhs = np.asarray([halfspace.offset for halfspace in self.halfspaces])
        return matrix, rhs

    def contains(self, point: Sequence[float], tolerance: float = _DEFAULT_TOLERANCE) -> bool:
        """Return True when ``point`` satisfies every halfspace."""
        return all(halfspace.contains(point, tolerance) for halfspace in self.halfspaces)

    def find_point(self) -> np.ndarray | None:
        """Return a point inside the region, or ``None`` when it is empty."""
        matrix, rhs = self.as_matrix()
        result = feasibility_program(
            variable_count=self.dimension,
            inequality_matrix=matrix,
            inequality_rhs=rhs,
            bounds=(None, None),
        )
        if not result.feasible or result.solution is None:
            return None
        return result.solution

    def is_empty(self) -> bool:
        """Return True when no point satisfies all the halfspaces."""
        return self.find_point() is None

    def chebyshev_center(self) -> tuple[np.ndarray, float] | None:
        """Return the centre and radius of the largest inscribed ball, or None if empty.

        Maximises ``r`` subject to ``normal . x + r * ||normal|| <= offset`` for
        every halfspace.  A zero radius means the region has an empty interior
        (but may still be non-empty).
        """
        matrix, rhs = self.as_matrix()
        norms = np.linalg.norm(matrix, axis=1)
        # Variables: x (d, free), r (>= 0).  Minimise -r.
        variable_count = self.dimension + 1
        objective = np.zeros(variable_count)
        objective[-1] = -1.0
        inequality_matrix = np.hstack([matrix, norms[:, None]])
        bounds: list[tuple[float | None, float | None]] = [(None, None)] * self.dimension
        bounds.append((0, None))
        result = solve_linear_program(
            objective,
            inequality_matrix=inequality_matrix,
            inequality_rhs=rhs,
            bounds=bounds,
        )
        if not result.feasible or result.solution is None:
            return None
        return result.solution[: self.dimension], float(result.solution[-1])

    def intersect(self, other: "HalfspaceRegion") -> "HalfspaceRegion":
        """Return the intersection of this region with ``other``."""
        if other.dimension != self.dimension:
            raise GeometryError("cannot intersect regions of different dimensions")
        return HalfspaceRegion(self.halfspaces + other.halfspaces)

    @classmethod
    def box(cls, lower: Sequence[float], upper: Sequence[float]) -> "HalfspaceRegion":
        """Return the axis-aligned box ``[lower, upper]`` as a halfspace region."""
        lower = as_point(lower)
        upper = as_point(upper, dimension=lower.shape[0])
        if np.any(upper < lower):
            raise GeometryError("box upper bound must dominate the lower bound")
        halfspaces = []
        dimension = lower.shape[0]
        for coordinate in range(dimension):
            unit = np.zeros(dimension)
            unit[coordinate] = 1.0
            halfspaces.append(Halfspace(unit, float(upper[coordinate])))
            halfspaces.append(Halfspace(-unit, -float(lower[coordinate])))
        return cls(halfspaces)


def separating_hyperplane(
    cloud: np.ndarray | Sequence[Sequence[float]],
    target: Sequence[float],
    tolerance: float = _DEFAULT_TOLERANCE,
) -> Halfspace | None:
    """Return a halfspace containing the hull of ``cloud`` but not ``target``.

    Returns ``None`` when no separating hyperplane exists, i.e. when the target
    lies in the convex hull.  The certificate is found by maximising the
    separation margin with normal bounded in the unit box; the resulting
    halfspace satisfies ``normal . p <= offset`` for every cloud point and
    ``normal . target > offset`` strictly (by at least ``tolerance``).
    """
    cloud = as_cloud(cloud)
    target = as_point(target, dimension=cloud.shape[1])
    point_count, dimension = cloud.shape
    if point_count == 0:
        raise GeometryError("cannot separate from an empty cloud")

    # Variables: normal (d, in [-1, 1]), offset (free), margin (>= 0).
    # Constraints: normal . p - offset <= 0 for cloud points,
    #              -(normal . target - offset) + margin <= 0  (i.e. margin <= normal.target - offset).
    # Maximise margin.
    variable_count = dimension + 2
    objective = np.zeros(variable_count)
    objective[-1] = -1.0

    inequality_rows: list[np.ndarray] = []
    inequality_rhs: list[float] = []
    for row_point in cloud:
        row = np.zeros(variable_count)
        row[:dimension] = row_point
        row[dimension] = -1.0
        inequality_rows.append(row)
        inequality_rhs.append(0.0)
    row = np.zeros(variable_count)
    row[:dimension] = -target
    row[dimension] = 1.0
    row[dimension + 1] = 1.0
    inequality_rows.append(row)
    inequality_rhs.append(0.0)

    bounds: list[tuple[float | None, float | None]] = [(-1.0, 1.0)] * dimension
    bounds.append((None, None))
    bounds.append((0.0, 1.0))

    result = solve_linear_program(
        objective,
        inequality_matrix=np.vstack(inequality_rows),
        inequality_rhs=np.asarray(inequality_rhs),
        bounds=bounds,
    )
    if not result.feasible or result.solution is None:
        return None
    normal = result.solution[:dimension]
    offset = float(result.solution[dimension])
    margin = float(result.solution[dimension + 1])
    if margin <= tolerance or np.allclose(normal, 0.0):
        return None
    return Halfspace(normal, offset)
