"""Exception hierarchy for the ``repro`` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish configuration mistakes from geometric or
protocol-level failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A system configuration violates a structural requirement.

    Examples: a negative number of processes, a dimension of zero, or a fault
    bound larger than the process count.
    """


class ResilienceError(ConfigurationError):
    """The (n, f, d) configuration does not meet the resilience bound required
    by the algorithm being instantiated.

    The paper's bounds (Theorems 1, 3, 4, 5 and 6) are enforced at
    construction time by the protocol classes; violating them raises this
    error unless the caller explicitly opts into an under-provisioned run
    (which the impossibility experiments do).
    """


class GeometryError(ReproError):
    """A geometric computation failed or was called with invalid input."""


class EmptyIntersectionError(GeometryError):
    """The requested intersection of convex hulls is empty.

    Raised by safe-area computations when ``Gamma(Y)`` is empty, which the
    paper proves can only happen when ``|Y| < (d+1)f + 1``.
    """


class LinearProgramError(GeometryError):
    """An underlying linear program terminated abnormally.

    Carries the solver status message so callers can distinguish genuine
    infeasibility (often a meaningful geometric answer) from numerical
    failure.
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ProtocolError(ReproError):
    """A protocol run reached an inconsistent internal state."""


class AgreementViolation(ProtocolError):
    """Non-faulty processes decided on different values.

    Only raised by the *verification* layer (:mod:`repro.core.validity`), never
    swallowed by the algorithms themselves.
    """


class ValidityViolation(ProtocolError):
    """A decision vector lies outside the convex hull of honest inputs."""


class TerminationError(ProtocolError):
    """A protocol failed to terminate within the simulator's step budget."""


class ByzantineBehaviorError(ReproError):
    """An adversary strategy was asked to act in a state it cannot handle."""


class SchedulerError(ReproError):
    """The asynchronous scheduler was driven into an invalid state."""
