"""repro — a reproduction of "Byzantine Vector Consensus in Complete Graphs".

Vaidya & Garg (PODC 2013) study consensus where every process proposes a
``d``-dimensional vector and the decision must lie in the convex hull of the
non-faulty processes' inputs, despite up to ``f`` Byzantine processes.  This
package implements the paper's algorithms and bounds end-to-end on simulated
synchronous and asynchronous message-passing systems:

* :mod:`repro.core` — the Exact BVC algorithm, the asynchronous Approximate
  BVC algorithm, the restricted-round variants, the safe area ``Gamma``, the
  resilience bounds, and the impossibility constructions;
* :mod:`repro.geometry` — the convex-geometry substrate (hulls, Tverberg
  partitions, centerpoints), all phrased as linear programs;
* :mod:`repro.network`, :mod:`repro.processes` — complete-graph FIFO
  networks with synchronous and asynchronous runtimes;
* :mod:`repro.consensus`, :mod:`repro.broadcast` — the scalar substrates
  (EIG Byzantine broadcast, Bracha reliable broadcast, the AAD witness
  exchange);
* :mod:`repro.byzantine` — adversary strategies;
* :mod:`repro.engine` — the unified simulation engine: declarative trial
  specs, campaign grids with deterministic seed derivation, and a
  worker-pool executor streaming JSONL results;
* :mod:`repro.workloads`, :mod:`repro.analysis` — input generators,
  experiment runners, metrics and reporting.

Quick start::

    from repro import run_exact_bvc, check_exact_outcome
    from repro.workloads import probability_vector_registry

    registry = probability_vector_registry(process_count=5, dimension=3, fault_bound=1)
    outcome = run_exact_bvc(registry)
    report = check_exact_outcome(registry, outcome.decisions)
    assert report.all_ok
"""

from repro.core import (
    ApproxBVCOutcome,
    ApproxBVCProcess,
    ExactBVCOutcome,
    ExactBVCProcess,
    RestrictedRoundOutcome,
    SafeAreaCalculator,
    Setting,
    SystemConfiguration,
    ValidityReport,
    check_approximate_outcome,
    check_exact_outcome,
    contraction_factor,
    minimum_processes_approx_async,
    minimum_processes_exact_sync,
    minimum_processes_restricted_async,
    minimum_processes_restricted_sync,
    round_threshold,
    run_approx_bvc,
    run_coordinatewise_consensus,
    run_exact_bvc,
    run_restricted_async_bvc,
    run_restricted_sync_bvc,
    safe_area_point,
)
from repro.engine import Campaign, TrialResult, TrialSpec, run_campaign, run_trial
from repro.processes import ProcessRegistry

__version__ = "1.0.0"

__all__ = [
    "ApproxBVCOutcome",
    "ApproxBVCProcess",
    "ExactBVCOutcome",
    "ExactBVCProcess",
    "RestrictedRoundOutcome",
    "SafeAreaCalculator",
    "Setting",
    "SystemConfiguration",
    "ValidityReport",
    "check_approximate_outcome",
    "check_exact_outcome",
    "contraction_factor",
    "minimum_processes_approx_async",
    "minimum_processes_exact_sync",
    "minimum_processes_restricted_async",
    "minimum_processes_restricted_sync",
    "round_threshold",
    "run_approx_bvc",
    "run_coordinatewise_consensus",
    "run_exact_bvc",
    "run_restricted_async_bvc",
    "run_restricted_sync_bvc",
    "safe_area_point",
    "Campaign",
    "TrialResult",
    "TrialSpec",
    "run_campaign",
    "run_trial",
    "ProcessRegistry",
    "__version__",
]
