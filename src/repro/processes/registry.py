"""Bookkeeping of which processes exist and which are faulty.

A :class:`ProcessRegistry` pairs a :class:`~repro.core.conditions.SystemConfiguration`
with a concrete choice of faulty process ids and the honest processes' input
vectors.  It is the single source of truth the runtimes, the adversary and the
verification layer all consult, so "who is honest" can never drift between
components of an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.conditions import SystemConfiguration
from repro.exceptions import ConfigurationError
from repro.geometry.multisets import PointMultiset
from repro.geometry.points import as_point

__all__ = ["ProcessRegistry"]


@dataclass(frozen=True)
class ProcessRegistry:
    """The cast of an experiment: process ids, fault set, honest inputs.

    Attributes:
        configuration: the (n, d, f) system configuration.
        faulty_ids: ids of the processes controlled by the adversary.  The set
            may be smaller than ``f`` (the adversary does not have to use its
            full budget) but never larger.
        inputs: input vector for every process id, including the nominal
            inputs of faulty processes (a Byzantine process may ignore its
            nominal input, but the generators still assign one so that
            baselines and "no actual fault" runs are well defined).
    """

    configuration: SystemConfiguration
    faulty_ids: frozenset[int]
    inputs: dict[int, np.ndarray] = field(default_factory=dict)

    def __init__(
        self,
        configuration: SystemConfiguration,
        inputs: Mapping[int, Sequence[float]],
        faulty_ids: Iterable[int] = (),
    ) -> None:
        faulty = frozenset(int(process_id) for process_id in faulty_ids)
        expected_ids = set(range(configuration.process_count))
        provided_ids = {int(process_id) for process_id in inputs}
        if provided_ids != expected_ids:
            raise ConfigurationError(
                f"inputs must cover exactly process ids {sorted(expected_ids)}, got {sorted(provided_ids)}"
            )
        if not faulty.issubset(expected_ids):
            raise ConfigurationError(
                f"faulty ids {sorted(faulty)} are not a subset of process ids {sorted(expected_ids)}"
            )
        if len(faulty) > configuration.fault_bound:
            raise ConfigurationError(
                f"{len(faulty)} faulty processes exceeds the fault bound f={configuration.fault_bound}"
            )
        normalised = {
            int(process_id): as_point(vector, dimension=configuration.dimension)
            for process_id, vector in inputs.items()
        }
        object.__setattr__(self, "configuration", configuration)
        object.__setattr__(self, "faulty_ids", faulty)
        object.__setattr__(self, "inputs", normalised)

    # -- membership -------------------------------------------------------------

    @property
    def process_ids(self) -> tuple[int, ...]:
        """All process ids, in increasing order."""
        return tuple(range(self.configuration.process_count))

    @property
    def honest_ids(self) -> tuple[int, ...]:
        """Ids of the non-faulty processes, in increasing order."""
        return tuple(pid for pid in self.process_ids if pid not in self.faulty_ids)

    def is_faulty(self, process_id: int) -> bool:
        """Return True when ``process_id`` is adversary controlled."""
        return process_id in self.faulty_ids

    # -- inputs -------------------------------------------------------------------

    def input_of(self, process_id: int) -> np.ndarray:
        """Return the nominal input vector of ``process_id``."""
        return self.inputs[process_id]

    def honest_inputs(self) -> dict[int, np.ndarray]:
        """Return the inputs of the non-faulty processes keyed by id."""
        return {pid: self.inputs[pid] for pid in self.honest_ids}

    def honest_input_multiset(self) -> PointMultiset:
        """Return the honest inputs as a multiset (the validity hull's generators)."""
        return PointMultiset([self.inputs[pid] for pid in self.honest_ids])

    def all_input_multiset(self) -> PointMultiset:
        """Return every process's nominal input as a multiset."""
        return PointMultiset([self.inputs[pid] for pid in self.process_ids])

    # -- derived quantities ---------------------------------------------------------

    def value_bounds(self) -> tuple[float, float]:
        """Return global coordinate bounds ``(lower, upper)`` over the honest inputs.

        These play the role of the paper's a-priori bounds ``nu`` and ``U`` used
        by the static termination rule of the asynchronous algorithm.
        """
        cloud = self.honest_input_multiset().points
        return float(cloud.min()), float(cloud.max())
