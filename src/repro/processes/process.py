"""Process abstractions shared by the synchronous and asynchronous runtimes.

The algorithms in :mod:`repro.core` and the substrates in
:mod:`repro.consensus` / :mod:`repro.broadcast` are written as *process
classes* against these two small interfaces, so the same algorithm object can
be driven by either runtime and inspected by tests without any networking
involved.

Synchronous model (lock-step rounds):
    In round ``t`` the runtime first asks every process for its outgoing
    messages (:meth:`SyncProcess.outgoing`), then delivers to each process all
    the messages addressed to it that were sent in the same round
    (:meth:`SyncProcess.deliver`).  This is the classical synchronous
    message-passing model the paper's Section 2 assumes.

Asynchronous model (event driven):
    A process is started once (:meth:`AsyncProcess.on_start`) and is then
    driven purely by message deliveries (:meth:`AsyncProcess.on_message`), in
    whatever order the scheduler chooses, with per-channel FIFO preserved.
    Processes send by calling the ``send`` callable the runtime binds into
    them.  This matches the paper's Section 3 model: arbitrary relative speeds
    and arbitrary (finite) message delays.
"""

from __future__ import annotations

import abc
from typing import Any, Callable

from repro.exceptions import ProtocolError
from repro.network.message import Message

__all__ = ["SyncProcess", "AsyncProcess"]


class SyncProcess(abc.ABC):
    """A process driven by the lock-step synchronous runtime."""

    def __init__(self, process_id: int) -> None:
        self.process_id = process_id

    @abc.abstractmethod
    def outgoing(self, round_index: int) -> list[Message]:
        """Return the messages this process sends in round ``round_index``."""

    @abc.abstractmethod
    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        """Receive every message addressed to this process in round ``round_index``."""

    @abc.abstractmethod
    def has_decided(self) -> bool:
        """Return True once the process has fixed its decision value."""

    @abc.abstractmethod
    def decision(self) -> Any:
        """Return the decision value; only meaningful once :meth:`has_decided` is True."""

    def require_decision(self) -> Any:
        """Return the decision, raising :class:`ProtocolError` if none was reached."""
        if not self.has_decided():
            raise ProtocolError(f"process {self.process_id} has not decided")
        return self.decision()


class AsyncProcess(abc.ABC):
    """A process driven by the event-based asynchronous runtime."""

    def __init__(self, process_id: int) -> None:
        self.process_id = process_id
        self._send: Callable[[Message], None] | None = None

    # -- wiring ----------------------------------------------------------------

    def bind_transport(self, send: Callable[[Message], None]) -> None:
        """Attach the runtime's send function.  Called once before :meth:`on_start`."""
        self._send = send

    def send(self, message: Message) -> None:
        """Send a message through the runtime (raises if the process is unbound)."""
        if self._send is None:
            raise ProtocolError(
                f"process {self.process_id} is not bound to a runtime and cannot send"
            )
        self._send(message)

    def send_to_all(self, recipients: list[int], build: Callable[[int], Message]) -> None:
        """Send one message per recipient, built by ``build(recipient)``.

        Self-addressed messages are skipped; algorithms that logically "send to
        themselves" handle their own value locally instead, which is the usual
        convention in message-passing pseudo-code.
        """
        for recipient in recipients:
            if recipient == self.process_id:
                continue
            self.send(build(recipient))

    # -- lifecycle ----------------------------------------------------------------

    @abc.abstractmethod
    def on_start(self) -> None:
        """Perform the initial sends.  Called exactly once, before any delivery."""

    @abc.abstractmethod
    def on_message(self, message: Message) -> None:
        """Handle one delivered message."""

    @abc.abstractmethod
    def has_decided(self) -> bool:
        """Return True once the process has fixed its decision value."""

    @abc.abstractmethod
    def decision(self) -> Any:
        """Return the decision value; only meaningful once :meth:`has_decided` is True."""

    def require_decision(self) -> Any:
        """Return the decision, raising :class:`ProtocolError` if none was reached."""
        if not self.has_decided():
            raise ProtocolError(f"process {self.process_id} has not decided")
        return self.decision()
