"""Process abstractions and experiment cast bookkeeping."""

from repro.processes.process import AsyncProcess, SyncProcess
from repro.processes.registry import ProcessRegistry

__all__ = ["AsyncProcess", "SyncProcess", "ProcessRegistry"]
