"""Workload generators for examples, tests and benchmarks."""

from repro.workloads.generators import (
    basis_counterexample_registry,
    gradient_registry,
    intro_counterexample_registry,
    probability_vector_registry,
    robot_position_registry,
    uniform_box_registry,
)

__all__ = [
    "basis_counterexample_registry",
    "gradient_registry",
    "intro_counterexample_registry",
    "probability_vector_registry",
    "robot_position_registry",
    "uniform_box_registry",
]
