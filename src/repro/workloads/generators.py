"""Input-vector workload generators.

These produce the :class:`~repro.processes.registry.ProcessRegistry` objects
(inputs + fault set) that the examples, tests and benchmarks run on.  The
families mirror the applications the paper's introduction motivates, plus the
adversarial constructions its lower bounds use:

* probability vectors (agreement on a distribution / feasible point of a
  simplex-constrained optimisation problem);
* robot positions in a bounded arena (multi-robot rendezvous);
* gradient-like vectors clustered around a true gradient with heavy-tailed
  noise (Byzantine-robust aggregation for distributed learning);
* the paper's introductory counterexample inputs;
* the standard-basis configurations behind the Theorem 1 / Theorem 4
  impossibility arguments;
* generic uniform-box inputs for property-based tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.conditions import SystemConfiguration
from repro.exceptions import ConfigurationError
from repro.processes.registry import ProcessRegistry

__all__ = [
    "uniform_box_registry",
    "probability_vector_registry",
    "robot_position_registry",
    "gradient_registry",
    "intro_counterexample_registry",
    "basis_counterexample_registry",
]


def _pick_faulty_ids(process_count: int, fault_count: int, rng: np.random.Generator) -> frozenset[int]:
    if fault_count < 0 or fault_count > process_count:
        raise ConfigurationError("fault count must be between 0 and n")
    if fault_count == 0:
        return frozenset()
    chosen = rng.choice(process_count, size=fault_count, replace=False)
    return frozenset(int(process_id) for process_id in chosen)


def uniform_box_registry(
    process_count: int,
    dimension: int,
    fault_bound: int,
    fault_count: int | None = None,
    lower: float = 0.0,
    upper: float = 1.0,
    seed: int = 0,
) -> ProcessRegistry:
    """Inputs drawn uniformly from the box ``[lower, upper]^d``."""
    if upper < lower:
        raise ConfigurationError("upper must be at least lower")
    rng = np.random.default_rng(seed)
    configuration = SystemConfiguration(process_count, dimension, fault_bound)
    fault_count = fault_bound if fault_count is None else fault_count
    inputs = {
        process_id: rng.uniform(lower, upper, size=dimension)
        for process_id in range(process_count)
    }
    return ProcessRegistry(configuration, inputs, _pick_faulty_ids(process_count, fault_count, rng))


def probability_vector_registry(
    process_count: int,
    dimension: int,
    fault_bound: int,
    fault_count: int | None = None,
    concentration: float = 1.0,
    seed: int = 0,
) -> ProcessRegistry:
    """Inputs drawn from a Dirichlet distribution (points of the probability simplex).

    The convex hull of probability vectors is again a set of probability
    vectors, so a correct BVC decision is guaranteed to be a valid
    distribution — the property the introduction's example is about.
    """
    rng = np.random.default_rng(seed)
    configuration = SystemConfiguration(process_count, dimension, fault_bound)
    fault_count = fault_bound if fault_count is None else fault_count
    inputs = {
        process_id: rng.dirichlet(np.full(dimension, concentration))
        for process_id in range(process_count)
    }
    return ProcessRegistry(configuration, inputs, _pick_faulty_ids(process_count, fault_count, rng))


def robot_position_registry(
    process_count: int,
    fault_bound: int,
    fault_count: int | None = None,
    dimension: int = 3,
    arena_size: float = 10.0,
    cluster_spread: float = 2.0,
    seed: int = 0,
) -> ProcessRegistry:
    """Robot positions in a ``[0, arena_size]^d`` arena, clustered around a rendezvous area.

    Models the paper's mobile-robot motivation: each robot proposes its own
    position; the consensus point is a rendezvous location guaranteed to lie
    within the region spanned by the correct robots.
    """
    rng = np.random.default_rng(seed)
    configuration = SystemConfiguration(process_count, dimension, fault_bound)
    fault_count = fault_bound if fault_count is None else fault_count
    center = rng.uniform(cluster_spread, arena_size - cluster_spread, size=dimension)
    inputs = {}
    for process_id in range(process_count):
        position = center + rng.normal(0.0, cluster_spread / 2.0, size=dimension)
        inputs[process_id] = np.clip(position, 0.0, arena_size)
    return ProcessRegistry(configuration, inputs, _pick_faulty_ids(process_count, fault_count, rng))


def gradient_registry(
    process_count: int,
    dimension: int,
    fault_bound: int,
    fault_count: int | None = None,
    gradient_scale: float = 1.0,
    noise_scale: float = 0.1,
    seed: int = 0,
) -> ProcessRegistry:
    """Gradient-like inputs: a shared true gradient plus per-process noise.

    Models Byzantine-robust aggregation in distributed learning: each worker
    proposes its stochastic gradient; BVC yields an aggregate inside the convex
    hull of the honest gradients regardless of what the Byzantine workers send.
    """
    rng = np.random.default_rng(seed)
    configuration = SystemConfiguration(process_count, dimension, fault_bound)
    fault_count = fault_bound if fault_count is None else fault_count
    true_gradient = rng.normal(0.0, gradient_scale, size=dimension)
    inputs = {
        process_id: true_gradient + rng.normal(0.0, noise_scale, size=dimension)
        for process_id in range(process_count)
    }
    return ProcessRegistry(configuration, inputs, _pick_faulty_ids(process_count, fault_count, rng))


def intro_counterexample_registry(extended: bool = False) -> ProcessRegistry:
    """The paper's introductory example: probability-vector inputs, one faulty process.

    In the literal 4-process form (``extended=False``) processes
    ``p_0, p_1, p_2`` are honest with inputs ``[2/3, 1/6, 1/6]``,
    ``[1/6, 2/3, 1/6]`` and ``[1/6, 1/6, 2/3]`` and process ``p_3`` is faulty.
    Coordinate-wise scalar consensus can decide ``[1/6, 1/6, 1/6]``, which is
    not in the convex hull of the honest inputs (its coordinates sum to 1/2).

    With ``extended=True`` a fourth honest process holding the uniform vector
    ``[1/3, 1/3, 1/3]`` is added, bringing ``n`` to 5 — the Exact BVC bound
    ``max(3f+1, (d+1)f+1)`` for ``d = 3, f = 1`` — so the same attack can be
    run against both the coordinate-wise baseline (which still fails vector
    validity) and the Exact BVC algorithm (which does not).
    """
    third = 2.0 / 3.0
    sixth = 1.0 / 6.0
    inputs = {
        0: np.asarray([third, sixth, sixth]),
        1: np.asarray([sixth, third, sixth]),
        2: np.asarray([sixth, sixth, third]),
    }
    if extended:
        inputs[3] = np.full(3, 1.0 / 3.0)
        inputs[4] = np.asarray([sixth, sixth, sixth])
        faulty = {4}
        configuration = SystemConfiguration(process_count=5, dimension=3, fault_bound=1)
    else:
        inputs[3] = np.asarray([sixth, sixth, sixth])
        faulty = {3}
        configuration = SystemConfiguration(process_count=4, dimension=3, fault_bound=1)
    return ProcessRegistry(configuration, inputs, faulty_ids=faulty)


def basis_counterexample_registry(dimension: int, epsilon: float = 0.25) -> ProcessRegistry:
    """The Theorem 4 input configuration as a registry (``n = d + 2``, ``f = 1``).

    Processes ``0 .. d-1`` hold ``4 * epsilon * e_i``; processes ``d`` and
    ``d + 1`` hold the origin.  Used by the asynchronous impossibility
    experiment (the construction itself is analysed analytically in
    :mod:`repro.core.impossibility`; the registry form is handy for running
    under-provisioned protocols against it).
    """
    if dimension < 1:
        raise ConfigurationError("dimension must be at least 1")
    configuration = SystemConfiguration(process_count=dimension + 2, dimension=dimension, fault_bound=1)
    inputs = {}
    for process_id in range(dimension):
        vector = np.zeros(dimension)
        vector[process_id] = 4.0 * epsilon
        inputs[process_id] = vector
    inputs[dimension] = np.zeros(dimension)
    inputs[dimension + 1] = np.zeros(dimension)
    return ProcessRegistry(configuration, inputs, faulty_ids={dimension + 1})
