"""Scalar consensus substrate: EIG broadcast and scalar agreement algorithms."""

from repro.consensus.eig import EigBroadcastInstance, EigBroadcastProcess, eig_round_count
from repro.consensus.scalar_exact import (
    ScalarConsensusOutcome,
    ScalarConsensusProcess,
    lower_median,
    run_scalar_consensus,
)
from repro.consensus.scalar_approx import (
    ScalarApproxOutcome,
    ScalarApproxProcess,
    run_scalar_approx_consensus,
)

__all__ = [
    "EigBroadcastInstance",
    "EigBroadcastProcess",
    "eig_round_count",
    "ScalarConsensusOutcome",
    "ScalarConsensusProcess",
    "lower_median",
    "run_scalar_consensus",
    "ScalarApproxOutcome",
    "ScalarApproxProcess",
    "run_scalar_approx_consensus",
]
