"""Synchronous Byzantine scalar consensus (the classical ``d = 1`` base case).

Each process EIG-broadcasts its scalar input; after the broadcasts every
non-faulty process holds an identical multiset of ``n`` scalars in which every
non-faulty process's entry is its true input, and decides the *lower median*
of that multiset.  With ``n >= 3f + 1`` the lower median is always within the
range of the honest inputs, so scalar validity holds; agreement holds because
the multiset is identical everywhere.

This substrate exists for two reasons: it is the algorithm the paper's
introduction runs coordinate-by-coordinate to show that scalar consensus does
*not* solve vector consensus (experiment E1), and it doubles as a unit-level
exercise of the EIG machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.byzantine.adversary import ByzantineSyncProcess, MessageMutator
from repro.consensus.eig import EigBroadcastInstance, eig_round_count
from repro.core.conditions import minimum_processes_scalar
from repro.exceptions import ProtocolError, ResilienceError
from repro.network.message import Message
from repro.network.sync_runtime import SynchronousRuntime
from repro.processes.process import SyncProcess

__all__ = ["lower_median", "ScalarConsensusProcess", "ScalarConsensusOutcome", "run_scalar_consensus"]


def lower_median(values: np.ndarray) -> float:
    """Return the lower median (element at index ``(k - 1) // 2`` of the sorted values)."""
    ordered = np.sort(np.asarray(values, dtype=float).reshape(-1))
    if ordered.size == 0:
        raise ProtocolError("median of an empty collection is undefined")
    return float(ordered[(ordered.size - 1) // 2])


class ScalarConsensusProcess(SyncProcess):
    """One process of synchronous Byzantine scalar consensus."""

    PROTOCOL = "scalar_consensus"

    def __init__(
        self,
        process_id: int,
        process_count: int,
        fault_bound: int,
        input_value: float,
        allow_insufficient: bool = False,
    ) -> None:
        super().__init__(process_id)
        required = minimum_processes_scalar(fault_bound)
        if process_count < required and not allow_insufficient:
            raise ResilienceError(
                f"scalar consensus needs n >= {required} for f={fault_bound}, got n={process_count}"
            )
        self.process_count = process_count
        self.fault_bound = fault_bound
        self.input_value = float(input_value)
        process_ids = tuple(range(process_count))
        self._instances = {
            originator: EigBroadcastInstance(
                owner_id=process_id,
                sender_id=originator,
                process_ids=process_ids,
                fault_bound=fault_bound,
                value=self.input_value if originator == process_id else None,
                default=0.0,
            )
            for originator in process_ids
        }
        self._decided = False
        self._decision: float | None = None
        self._agreed_values: np.ndarray | None = None

    @property
    def total_rounds(self) -> int:
        """Number of synchronous rounds (``f + 1``)."""
        return eig_round_count(self.fault_bound)

    def outgoing(self, round_index: int) -> list[Message]:
        if round_index > self.total_rounds:
            return []
        bundle = {}
        for originator, instance in self._instances.items():
            payload = instance.payload_for_round(round_index)
            if payload is not None:
                bundle[originator] = dict(payload)
        if not bundle:
            return []
        return [
            Message(
                sender=self.process_id,
                recipient=recipient,
                protocol=self.PROTOCOL,
                kind="EIG",
                payload=bundle,
                round_index=round_index,
            )
            for recipient in range(self.process_count)
            if recipient != self.process_id
        ]

    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        if round_index > self.total_rounds:
            return
        for message in inbox:
            if message.protocol != self.PROTOCOL or not isinstance(message.payload, dict):
                continue
            for originator, payload in message.payload.items():
                instance = self._instances.get(originator)
                if instance is not None:
                    instance.receive_payload(round_index, message.sender, payload)
        for instance in self._instances.values():
            instance.finish_round(round_index)
        if round_index == self.total_rounds:
            values = []
            for originator in range(self.process_count):
                resolved = self._instances[originator].resolve()
                try:
                    scalar = float(resolved)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    scalar = 0.0
                values.append(scalar if np.isfinite(scalar) else 0.0)
            self._agreed_values = np.asarray(values, dtype=float)
            self._decision = lower_median(self._agreed_values)
            self._decided = True

    def has_decided(self) -> bool:
        return self._decided

    def decision(self) -> float:
        if self._decision is None:
            raise ProtocolError(f"process {self.process_id} has not decided")
        return self._decision

    @property
    def agreed_values(self) -> np.ndarray | None:
        """The identical multiset of broadcast values (after deciding)."""
        return self._agreed_values


@dataclass(frozen=True)
class ScalarConsensusOutcome:
    """Result of a scalar consensus run."""

    decisions: dict[int, float]
    rounds_executed: int
    messages_sent: int


def run_scalar_consensus(
    inputs: dict[int, float],
    fault_bound: int,
    faulty_ids: frozenset[int] | set[int] = frozenset(),
    adversary_mutators: dict[int, MessageMutator] | None = None,
    allow_insufficient: bool = False,
) -> ScalarConsensusOutcome:
    """Run synchronous Byzantine scalar consensus end-to-end.

    ``inputs`` maps every process id (``0 .. n-1``) to its scalar input;
    ``faulty_ids``/``adversary_mutators`` configure the attack as in the vector
    runners.
    """
    adversary_mutators = adversary_mutators or {}
    process_count = len(inputs)
    honest_ids = tuple(sorted(set(inputs) - set(faulty_ids)))
    processes: dict[int, SyncProcess] = {}
    for process_id, value in sorted(inputs.items()):
        core = ScalarConsensusProcess(
            process_id=process_id,
            process_count=process_count,
            fault_bound=fault_bound,
            input_value=value,
            allow_insufficient=allow_insufficient,
        )
        if process_id in faulty_ids and process_id in adversary_mutators:
            processes[process_id] = ByzantineSyncProcess(core, adversary_mutators[process_id])
        else:
            processes[process_id] = core
    runtime = SynchronousRuntime(processes, honest_ids=honest_ids, max_rounds=fault_bound + 2)
    result = runtime.run()
    return ScalarConsensusOutcome(
        decisions={pid: float(result.decisions[pid]) for pid in honest_ids},
        rounds_executed=result.rounds_executed,
        messages_sent=result.traffic.messages_sent,
    )
