"""Asynchronous approximate *scalar* consensus with the simple round structure.

This is the Dolev-Lynch-Pinter-Stark-Weihl style iterated averaging algorithm
the paper cites as [5]: the simplest asynchronous approximate agreement
protocol, requiring ``n >= 5f + 1``.  It serves two roles in this repository:

* it is the scalar analogue of the Section 4 restricted-round algorithms
  (Theorem 6's remark that the 2f gap between the witness-based and the
  simple structure mirrors the gap between [1] and [5]); and
* it is a baseline in the robust-aggregation benchmarks, applied coordinate
  by coordinate.

Round ``t`` at a process: send the current scalar state tagged ``t``; wait for
round-``t`` values from ``n - f - 1`` other processes; discard the ``f``
smallest and ``f`` largest of the collected ``n - f`` values and move to the
midpoint of the remaining extremes.  The honest-value range halves every
round, so ``ceil(log2(range / epsilon))`` rounds give epsilon-agreement.

The trimmed interval *is* the one-dimensional safe area ``Gamma`` of the
collected values (drop the ``f`` smallest for the lower end, the ``f``
largest for the upper end), so the state update routes through the geometry
kernel's closed form :func:`repro.geometry.kernel.safe_area_interval_1d`,
making the connection to the vector algorithms explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

import numpy as np

from repro.byzantine.adversary import ByzantineAsyncProcess, MessageMutator
from repro.exceptions import ConfigurationError, ProtocolError, ResilienceError
from repro.geometry.kernel import safe_area_interval_1d
from repro.network.async_runtime import AsynchronousRuntime
from repro.network.message import Message
from repro.network.scheduler import DeliveryScheduler
from repro.processes.process import AsyncProcess

__all__ = ["ScalarApproxProcess", "ScalarApproxOutcome", "run_scalar_approx_consensus"]


def _scalar_round_threshold(value_range: float, epsilon: float) -> int:
    if epsilon <= 0:
        raise ConfigurationError("epsilon must be positive")
    if value_range <= epsilon:
        return 1
    return max(1, ceil(log2(value_range / epsilon)))


class ScalarApproxProcess(AsyncProcess):
    """One process of asynchronous approximate scalar consensus (n >= 5f + 1)."""

    PROTOCOL = "scalar_approx"

    def __init__(
        self,
        process_id: int,
        process_count: int,
        fault_bound: int,
        input_value: float,
        epsilon: float,
        value_lower: float,
        value_upper: float,
        max_rounds_override: int | None = None,
        allow_insufficient: bool = False,
    ) -> None:
        super().__init__(process_id)
        if fault_bound > 0 and process_count < 5 * fault_bound + 1 and not allow_insufficient:
            raise ResilienceError(
                f"the simple asynchronous structure needs n >= 5f + 1; got n={process_count}, f={fault_bound}"
            )
        if value_upper < value_lower:
            raise ConfigurationError("value_upper must be at least value_lower")
        self.process_count = process_count
        self.fault_bound = fault_bound
        self.epsilon = float(epsilon)
        self._state = float(input_value)
        self.state_history: list[float] = [self._state]
        computed_rounds = _scalar_round_threshold(value_upper - value_lower, self.epsilon)
        self.total_rounds = (
            max_rounds_override if max_rounds_override is not None else computed_rounds
        )
        self._wait_for = process_count - fault_bound - 1
        self._current_round = 0
        self._received_by_round: dict[int, dict[int, float]] = {}
        self._decided = False
        self._decision: float | None = None

    def on_start(self) -> None:
        self._begin_round(1)

    def on_message(self, message: Message) -> None:
        if self._decided:
            return
        if message.protocol != self.PROTOCOL or message.kind != "STATE":
            return
        if not isinstance(message.payload, dict):
            return
        round_index = message.payload.get("round")
        value = message.payload.get("state")
        if not isinstance(round_index, int):
            return
        try:
            scalar = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return
        if not np.isfinite(scalar) or round_index < self._current_round:
            return
        bucket = self._received_by_round.setdefault(round_index, {})
        if message.sender in bucket:
            return
        bucket[message.sender] = scalar
        self._maybe_finish_round()

    def has_decided(self) -> bool:
        return self._decided

    def decision(self) -> float:
        if self._decision is None:
            raise ProtocolError(f"process {self.process_id} has not decided")
        return self._decision

    # -- rounds ------------------------------------------------------------------------

    def _begin_round(self, round_index: int) -> None:
        self._current_round = round_index
        payload = {"round": round_index, "state": self._state}
        self.send_to_all(
            list(range(self.process_count)),
            lambda recipient: Message(
                sender=self.process_id,
                recipient=recipient,
                protocol=self.PROTOCOL,
                kind="STATE",
                payload=payload,
                round_index=round_index,
            ),
        )
        self._maybe_finish_round()

    def _maybe_finish_round(self) -> None:
        if self._decided or self._current_round == 0:
            return
        bucket = self._received_by_round.get(self._current_round, {})
        others = {sender: value for sender, value in bucket.items() if sender != self.process_id}
        if len(others) < self._wait_for:
            return
        collected = sorted(list(others.values()) + [self._state])
        # The f-trimmed interval is the scalar safe area Gamma(collected);
        # when it is empty (fewer than 2f + 1 values) fall back to the full
        # range, preserving the legacy update rule.
        interval = safe_area_interval_1d(collected, self.fault_bound)
        if interval is None:
            interval = (collected[0], collected[-1])
        self._state = (interval[0] + interval[1]) / 2.0
        self.state_history.append(self._state)
        finished_round = self._current_round
        self._received_by_round.pop(finished_round, None)
        if finished_round >= self.total_rounds:
            self._decision = self._state
            self._decided = True
            return
        self._begin_round(finished_round + 1)


@dataclass(frozen=True)
class ScalarApproxOutcome:
    """Result of an asynchronous approximate scalar consensus run."""

    decisions: dict[int, float]
    epsilon: float
    rounds_executed: int
    messages_sent: int
    state_histories: dict[int, list[float]]


def run_scalar_approx_consensus(
    inputs: dict[int, float],
    fault_bound: int,
    epsilon: float,
    faulty_ids: frozenset[int] | set[int] = frozenset(),
    adversary_mutators: dict[int, MessageMutator] | None = None,
    scheduler: DeliveryScheduler | None = None,
    value_bounds: tuple[float, float] | None = None,
    max_rounds_override: int | None = None,
    allow_insufficient: bool = False,
) -> ScalarApproxOutcome:
    """Run asynchronous approximate scalar consensus end-to-end."""
    adversary_mutators = adversary_mutators or {}
    process_count = len(inputs)
    honest_ids = tuple(sorted(set(inputs) - set(faulty_ids)))
    if value_bounds is None:
        honest_values = [inputs[pid] for pid in honest_ids]
        value_bounds = (min(honest_values), max(honest_values))
    value_lower, value_upper = value_bounds

    processes: dict[int, AsyncProcess] = {}
    cores: dict[int, ScalarApproxProcess] = {}
    for process_id, value in sorted(inputs.items()):
        core = ScalarApproxProcess(
            process_id=process_id,
            process_count=process_count,
            fault_bound=fault_bound,
            input_value=value,
            epsilon=epsilon,
            value_lower=value_lower,
            value_upper=value_upper,
            max_rounds_override=max_rounds_override,
            allow_insufficient=allow_insufficient,
        )
        cores[process_id] = core
        if process_id in faulty_ids and process_id in adversary_mutators:
            processes[process_id] = ByzantineAsyncProcess(core, adversary_mutators[process_id])
        else:
            processes[process_id] = core

    runtime = AsynchronousRuntime(processes, honest_ids=honest_ids, scheduler=scheduler)
    result = runtime.run()
    return ScalarApproxOutcome(
        decisions={pid: float(result.decisions[pid]) for pid in honest_ids},
        epsilon=epsilon,
        rounds_executed=max(cores[pid].total_rounds for pid in honest_ids),
        messages_sent=result.traffic.messages_sent,
        state_histories={pid: cores[pid].state_history for pid in honest_ids},
    )
