"""Exponential-information-gathering (EIG) Byzantine broadcast.

Step 1 of the paper's Exact BVC algorithm requires "a scalar Byzantine
broadcast algorithm (such as [12, 6])": a designated sender distributes a
value so that (i) all non-faulty processes decide an identical value and
(ii) if the sender is non-faulty they decide the sender's value, assuming
``n >= 3f + 1`` in a synchronous complete graph.  The classical algorithm the
citations refer to is exponential information gathering over ``f + 1`` rounds
(Lamport-Shostak-Pease / Bar-Noy-Dolev, as presented in Lynch's textbook), and
that is what this module implements.

The algorithm is packaged as an *embeddable state machine*
(:class:`EigBroadcastInstance`) rather than a full process, because the Exact
BVC process multiplexes ``n`` concurrent instances (one per originator) —
or ``n * d`` instances when broadcasting coordinate-by-coordinate — inside the
same synchronous rounds.  A thin :class:`EigBroadcastProcess` wrapper exposes a
single instance as a :class:`~repro.processes.process.SyncProcess` for unit
testing the substrate in isolation.

How the EIG tree works
----------------------
Tree nodes are labelled by sequences of *distinct* process ids starting with
the designated sender; the label ``(s, q1, ..., qk)`` stands for "``qk`` said
that ``q(k-1)`` said that ... ``q1`` said that the sender's value is ``v``".

* Round 1: the sender sends its value; every process stores it as
  ``value_at[(s,)]`` (a missing message yields the default value).
* Round ``k`` (``2 <= k <= f + 1``): every process relays all its level-
  ``k - 1`` values whose label does not contain it; receiving process ``p``
  stores the value relayed by ``q`` for label ``x`` as ``value_at[x + (q,)]``.
* After round ``f + 1`` each process resolves the tree bottom-up: a leaf
  resolves to its stored value, an internal node to the strict majority of its
  children (default value when there is no majority).  The decision is the
  resolved value of the root ``(s,)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Mapping

from repro.exceptions import ConfigurationError, ProtocolError
from repro.network.message import Message
from repro.processes.process import SyncProcess

__all__ = ["EigBroadcastInstance", "EigBroadcastProcess", "eig_round_count"]

NodeLabel = tuple[int, ...]


def eig_round_count(fault_bound: int) -> int:
    """Return the number of synchronous rounds EIG needs: ``f + 1``."""
    if fault_bound < 0:
        raise ConfigurationError("fault bound must be non-negative")
    return fault_bound + 1


@dataclass
class EigBroadcastInstance:
    """One EIG broadcast: ``sender`` distributes a value to all processes.

    The instance is driven by its owner process: once per round the owner
    calls :meth:`payload_for_round` and sends the returned relay payload to
    every other process (the same payload to everyone — honest behaviour),
    and feeds every payload it received to :meth:`receive_payload`.  After
    ``f + 1`` rounds, :meth:`resolve` produces the broadcast decision.
    """

    owner_id: int
    sender_id: int
    process_ids: tuple[int, ...]
    fault_bound: int
    value: Any = None
    default: Any = 0.0

    def __post_init__(self) -> None:
        if self.owner_id not in self.process_ids:
            raise ConfigurationError(f"owner {self.owner_id} is not among the processes")
        if self.sender_id not in self.process_ids:
            raise ConfigurationError(f"sender {self.sender_id} is not among the processes")
        if self.fault_bound < 0:
            raise ConfigurationError("fault bound must be non-negative")
        if self.owner_id == self.sender_id and self.value is None:
            raise ConfigurationError("the sending process must provide a value to broadcast")
        # value_at[x] is what this process believes about label x this far.
        self._value_at: dict[NodeLabel, Any] = {}
        self._resolved: Any = None
        self._is_resolved = False

    # -- round driving -----------------------------------------------------------

    @property
    def total_rounds(self) -> int:
        """Number of rounds this instance participates in (``f + 1``)."""
        return eig_round_count(self.fault_bound)

    def payload_for_round(self, round_index: int) -> Mapping[NodeLabel, Any] | None:
        """Return the relay payload this process sends in ``round_index``.

        Round 1: only the designated sender sends, as the single-entry mapping
        ``{(sender,): value}``.  Round ``k >= 2``: every process relays its
        level ``k - 1`` values whose labels do not already contain it.  Returns
        ``None`` when this process has nothing to send in this round.
        """
        if round_index < 1 or round_index > self.total_rounds:
            return None
        if round_index == 1:
            if self.owner_id != self.sender_id:
                return None
            return {(self.sender_id,): self.value}
        level = round_index - 1
        relay = {
            label: value
            for label, value in self._value_at.items()
            if len(label) == level and self.owner_id not in label
        }
        return relay or None

    def receive_payload(
        self, round_index: int, from_id: int, payload: Mapping[NodeLabel, Any] | None
    ) -> None:
        """Record the values relayed by ``from_id`` in ``round_index``.

        Malformed payloads (wrong label level, labels already containing the
        relayer, non-tuple labels) are ignored entry-by-entry: a Byzantine
        relayer cannot corrupt the tree structure, only the values at labels
        it legitimately owns — exactly the power the model gives it.
        """
        if round_index < 1 or round_index > self.total_rounds:
            return
        if payload is None:
            return
        if round_index == 1:
            if from_id != self.sender_id:
                return
            value = payload.get((self.sender_id,), self.default) if isinstance(payload, Mapping) else self.default
            self._value_at[(self.sender_id,)] = value
            return
        if not isinstance(payload, Mapping):
            return
        expected_level = round_index - 1
        for label, value in payload.items():
            if not isinstance(label, tuple) or len(label) != expected_level:
                continue
            if label[0] != self.sender_id:
                continue
            if from_id in label:
                continue
            if len(set(label)) != len(label):
                continue
            if any(process_id not in self.process_ids for process_id in label):
                continue
            self._value_at[label + (from_id,)] = value

    def finish_round(self, round_index: int) -> None:
        """Fill in defaults for labels that should exist after ``round_index`` but were not received.

        The classical algorithm assumes a missing or malformed message is read
        as the default value; making that explicit keeps the resolution step
        total.  The owner's own relayed values are stored here as well (a
        process trivially "receives" its own relay).
        """
        if round_index == 1:
            if self.owner_id == self.sender_id:
                self._value_at[(self.sender_id,)] = self.value
            self._value_at.setdefault((self.sender_id,), self.default)
            return
        expected_level = round_index
        previous_level_labels = [
            label for label in list(self._value_at) if len(label) == round_index - 1
        ]
        for label in previous_level_labels:
            for process_id in self.process_ids:
                if process_id in label:
                    continue
                extended = label + (process_id,)
                if len(extended) != expected_level:
                    continue
                if process_id == self.owner_id:
                    self._value_at[extended] = self._value_at[label]
                else:
                    self._value_at.setdefault(extended, self.default)

    # -- resolution ----------------------------------------------------------------

    def resolve(self) -> Any:
        """Resolve the EIG tree bottom-up and return the broadcast decision."""
        if self._is_resolved:
            return self._resolved
        root = (self.sender_id,)
        self._value_at.setdefault(root, self.default)
        self._resolved = self._resolve_node(root)
        self._is_resolved = True
        return self._resolved

    def _resolve_node(self, label: NodeLabel) -> Any:
        if len(label) >= self.total_rounds:
            return self._value_at.get(label, self.default)
        children = [
            self._resolve_node(label + (process_id,))
            for process_id in self.process_ids
            if process_id not in label
        ]
        if not children:
            return self._value_at.get(label, self.default)
        return self._strict_majority(children)

    def _strict_majority(self, values: list[Any]) -> Any:
        counts: dict[Hashable, tuple[int, Any]] = {}
        for value in values:
            key = self._hashable(value)
            count, _ = counts.get(key, (0, value))
            counts[key] = (count + 1, value)
        best_key, (best_count, best_value) = max(counts.items(), key=lambda item: item[1][0])
        if 2 * best_count > len(values):
            return best_value
        return self.default

    @staticmethod
    def _hashable(value: Any) -> Hashable:
        if isinstance(value, (list, tuple)):
            return tuple(EigBroadcastInstance._hashable(item) for item in value)
        try:
            hash(value)
            return value
        except TypeError:
            return repr(value)


class EigBroadcastProcess(SyncProcess):
    """A stand-alone synchronous process running a single EIG broadcast.

    Used to test and benchmark the broadcast substrate in isolation; the Exact
    BVC algorithm embeds :class:`EigBroadcastInstance` objects directly
    instead.
    """

    PROTOCOL = "eig_broadcast"

    def __init__(
        self,
        process_id: int,
        sender_id: int,
        process_ids: tuple[int, ...],
        fault_bound: int,
        value: Any = None,
        default: Any = 0.0,
    ) -> None:
        super().__init__(process_id)
        self.instance = EigBroadcastInstance(
            owner_id=process_id,
            sender_id=sender_id,
            process_ids=tuple(process_ids),
            fault_bound=fault_bound,
            value=value,
            default=default,
        )
        self._decided = False
        self._decision: Any = None

    def outgoing(self, round_index: int) -> list[Message]:
        payload = self.instance.payload_for_round(round_index)
        if payload is None:
            return []
        return [
            Message(
                sender=self.process_id,
                recipient=recipient,
                protocol=self.PROTOCOL,
                kind="RELAY",
                payload=dict(payload),
                round_index=round_index,
            )
            for recipient in self.instance.process_ids
            if recipient != self.process_id
        ]

    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        for message in inbox:
            if message.protocol != self.PROTOCOL:
                continue
            self.instance.receive_payload(round_index, message.sender, message.payload)
        self.instance.finish_round(round_index)
        if round_index >= self.instance.total_rounds:
            self._decision = self.instance.resolve()
            self._decided = True

    def has_decided(self) -> bool:
        return self._decided

    def decision(self) -> Any:
        if not self._decided:
            raise ProtocolError(f"process {self.process_id} has not resolved its EIG tree yet")
        return self._decision
