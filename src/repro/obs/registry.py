"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per process (the module-level :func:`get_registry`
singleton) collects telemetry from every layer of the stack — geometry kernel,
vectorized engine, worker pool, results store, HTTP server.  The design goals,
in order:

* **Stdlib only, low overhead.**  An increment is one attribute check plus one
  locked float add; with the registry disabled it is a single attribute check.
  Nothing here imports numpy or any other layer of ``repro`` (so every layer
  may import *this* module without cycles).
* **Mergeable.**  :meth:`MetricsRegistry.snapshot` produces a plain picklable
  dict; :func:`snapshot_delta` subtracts two snapshots; and
  :meth:`MetricsRegistry.merge` folds a (delta) snapshot into another
  registry.  This is how fork workers in :mod:`repro.engine.pool` ship their
  counters back to the parent over the existing result pipes: each unit reply
  carries the worker registry's delta since its previous reply, and the parent
  merges it — counter and histogram addition is associative and commutative,
  so parent totals are exact regardless of worker count or unit order.
* **Pull bridges for existing stats.**  Layers that already keep cheap local
  counters (:class:`~repro.geometry.kernel.KernelStats`, the vectorized memo
  stats, pool crash counters) do not double-instrument their hot loops;
  instead they register a :class:`CounterSync` collector that publishes the
  *delta* of the external stat dict into registry counters whenever the
  registry is collected (at scrape time, and before worker snapshots).

Prometheus text exposition lives in :func:`render_prometheus`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "CounterSync",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "quantile_from_histogram",
    "render_prometheus",
    "snapshot_delta",
    "snapshot_jsonable",
]

#: Default latency buckets (seconds): half-microsecond web requests through
#: ten-second campaign units.  Upper bounds, ascending; ``+Inf`` is implicit.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelValues = tuple[str, ...]


class _Family:
    """Shared machinery for one named metric and its labelled children."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help_text
        self.labelnames = labelnames
        self._children: dict[_LabelValues, Any] = {}

    def labels(self, **labels: str) -> Any:
        """The child for one label-value combination (created on first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._registry._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._children[key] = self._make_child()
        return child

    def _default_child(self) -> Any:
        """The unlabelled child (only valid for families without labelnames)."""
        if self.labelnames:
            raise ValueError(f"{self.name} requires labels {self.labelnames}")
        return self.labels()

    def _make_child(self) -> Any:  # pragma: no cover — overridden
        raise NotImplementedError


class Counter(_Family):
    """Monotonically increasing counter family (values only ever grow)."""

    kind = "counter"

    class _Child:
        __slots__ = ("_registry", "value")

        def __init__(self, registry: "MetricsRegistry") -> None:
            self._registry = registry
            self.value = 0.0

        def inc(self, amount: float = 1.0) -> None:
            if not self._registry.enabled:
                return
            with self._registry._lock:
                self.value += amount

    def _make_child(self) -> "Counter._Child":
        return Counter._Child(self._registry)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)


class Gauge(_Family):
    """Instantaneous value family (queue depth, busy seats, cache sizes)."""

    kind = "gauge"

    class _Child:
        __slots__ = ("_registry", "value")

        def __init__(self, registry: "MetricsRegistry") -> None:
            self._registry = registry
            self.value = 0.0

        def set(self, value: float) -> None:
            if not self._registry.enabled:
                return
            with self._registry._lock:
                self.value = float(value)

        def inc(self, amount: float = 1.0) -> None:
            if not self._registry.enabled:
                return
            with self._registry._lock:
                self.value += amount

        def dec(self, amount: float = 1.0) -> None:
            self.inc(-amount)

    def _make_child(self) -> "Gauge._Child":
        return Gauge._Child(self._registry)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)


class Histogram(_Family):
    """Fixed-bucket histogram family (latency distributions).

    ``buckets`` are finite upper bounds, strictly ascending; an implicit
    ``+Inf`` bucket catches the overflow.  Each child keeps per-bucket
    *non-cumulative* counts (cumulated only at exposition), a running sum and
    a total count — exactly the state that merges associatively across worker
    registries.
    """

    kind = "histogram"

    class _Child:
        __slots__ = ("_registry", "_bounds", "counts", "sum", "count")

        def __init__(self, registry: "MetricsRegistry", bounds: tuple[float, ...]) -> None:
            self._registry = registry
            self._bounds = bounds
            self.counts = [0] * (len(bounds) + 1)
            self.sum = 0.0
            self.count = 0

        def observe(self, value: float) -> None:
            if not self._registry.enabled:
                return
            index = _bucket_index(self._bounds, value)
            with self._registry._lock:
                self.counts[index] += 1
                self.sum += value
                self.count += 1

        def quantile(self, q: float) -> float:
            """Estimated ``q``-quantile (linear interpolation within buckets)."""
            with self._registry._lock:
                counts = list(self.counts)
            return quantile_from_histogram(self._bounds, counts, q)

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: Sequence[float],
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"{name}: histogram buckets must be ascending and non-empty")
        super().__init__(registry, name, help_text, labelnames)
        self.buckets = bounds

    def _make_child(self) -> "Histogram._Child":
        return Histogram._Child(self._registry, self.buckets)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


def _bucket_index(bounds: tuple[float, ...], value: float) -> int:
    """Index of the first bucket whose upper bound admits ``value``."""
    lo, hi = 0, len(bounds)
    while lo < hi:
        mid = (lo + hi) // 2
        if value <= bounds[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def quantile_from_histogram(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Estimate the ``q``-quantile from per-bucket counts.

    Linear interpolation inside the bucket containing the target rank, with
    the first bucket anchored at 0 and the overflow bucket clamped to the
    highest finite bound (the estimate cannot exceed what the buckets
    resolve).  Returns ``nan`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return float("nan")
    rank = q * total
    cumulative = 0.0
    for index, bucket_count in enumerate(counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank and bucket_count > 0:
            upper = bounds[index] if index < len(bounds) else bounds[-1]
            if index >= len(bounds):
                return float(bounds[-1])
            lower = bounds[index - 1] if index > 0 else 0.0
            fraction = (rank - previous) / bucket_count
            return float(lower + (upper - lower) * min(1.0, max(0.0, fraction)))
    return float(bounds[-1])


class CounterSync:
    """Bridge a monotone external stat mapping into a labelled counter family.

    ``source`` returns cumulative totals (e.g. ``KernelStats.snapshot()``);
    each :meth:`__call__` publishes the delta since the previous call into
    ``family.labels(<label>=key)``.  An external reset (totals going down) is
    handled the Prometheus way: the new total is treated as the new delta.
    Register instances with :meth:`MetricsRegistry.register_collector`.
    """

    def __init__(
        self,
        family: Counter,
        source: Callable[[], Mapping[str, float]],
        label: str | None = None,
    ) -> None:
        if label is None and family.labelnames:
            label = family.labelnames[0]
        self._family = family
        self._source = source
        self._label = label
        self._last: dict[str, float] = {}

    def __call__(self) -> None:
        for key, value in self._source().items():
            previous = self._last.get(key, 0.0)
            delta = value - previous if value >= previous else value
            if delta > 0:
                if self._label is None:
                    self._family.inc(delta)
                else:
                    self._family.labels(**{self._label: key}).inc(delta)
            self._last[key] = value


class MetricsRegistry:
    """Thread-safe registry of named metric families.

    Metric registration is idempotent: asking for an existing name returns
    the existing family (and raises if the type or labels disagree), so every
    call site can declare its metrics locally without import-order dances.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []

    # -- registration --------------------------------------------------------

    def _get_or_create(self, cls: type, name: str, help_text: str,
                       labelnames: Sequence[str], **kwargs: Any) -> Any:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as {family.kind}"
                    )
                return family
            if cls is Histogram:
                family = Histogram(self, name, help_text, tuple(labelnames), **kwargs)
            else:
                family = cls(self, name, help_text, tuple(labelnames))
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labelnames, buckets=buckets)

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Add a pull hook run by :meth:`collect` (idempotent per callable)."""
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    # -- collection / snapshots ----------------------------------------------

    def collect(self) -> None:
        """Run every registered collector (bridges external stats in)."""
        if not self.enabled:
            return
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()

    def snapshot(self, collect: bool = True) -> dict[str, dict[str, Any]]:
        """Picklable point-in-time copy of every family and sample."""
        if collect:
            self.collect()
        snap: dict[str, dict[str, Any]] = {}
        with self._lock:
            for name, family in self._families.items():
                samples: dict[_LabelValues, Any] = {}
                for key, child in family._children.items():
                    if family.kind == "histogram":
                        samples[key] = {
                            "counts": list(child.counts),
                            "sum": child.sum,
                            "count": child.count,
                        }
                    else:
                        samples[key] = child.value
                entry: dict[str, Any] = {
                    "type": family.kind,
                    "help": family.help,
                    "labelnames": family.labelnames,
                    "samples": samples,
                }
                if family.kind == "histogram":
                    entry["buckets"] = family.buckets
                snap[name] = entry
        return snap

    def merge(self, snap: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a snapshot (usually a delta) into this registry.

        Counters and histograms add; gauges take the incoming value.  Families
        absent here are created with the snapshot's declaration, so a parent
        can merge metrics only its workers ever touched.
        """
        for name, entry in snap.items():
            kind = entry["type"]
            labelnames = tuple(entry["labelnames"])
            if kind == "counter":
                family: _Family = self.counter(name, entry.get("help", ""), labelnames)
            elif kind == "gauge":
                family = self.gauge(name, entry.get("help", ""), labelnames)
            elif kind == "histogram":
                family = self.histogram(
                    name, entry.get("help", ""), labelnames,
                    buckets=entry["buckets"],
                )
                if family.buckets != tuple(entry["buckets"]):
                    raise ValueError(f"metric {name!r}: bucket bounds disagree on merge")
            else:  # pragma: no cover — snapshots only ever carry known kinds
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")
            for key, value in entry["samples"].items():
                child = family.labels(**dict(zip(labelnames, key)))
                with self._lock:
                    if kind == "counter":
                        child.value += value
                    elif kind == "gauge":
                        child.value = value
                    else:
                        counts = value["counts"]
                        if len(counts) != len(child.counts):
                            raise ValueError(
                                f"metric {name!r}: bucket counts disagree on merge"
                            )
                        for index, bucket_count in enumerate(counts):
                            child.counts[index] += bucket_count
                        child.sum += value["sum"]
                        child.count += value["count"]

    def reset(self) -> None:
        """Zero every sample (families and collectors stay registered)."""
        with self._lock:
            for family in self._families.values():
                for child in family._children.values():
                    if family.kind == "histogram":
                        child.counts = [0] * len(child.counts)
                        child.sum = 0.0
                        child.count = 0
                    else:
                        child.value = 0.0
            for collector in self._collectors:
                if isinstance(collector, CounterSync):
                    collector._last.clear()


def snapshot_delta(
    current: Mapping[str, Mapping[str, Any]],
    baseline: Mapping[str, Mapping[str, Any]],
) -> dict[str, dict[str, Any]]:
    """Subtract two snapshots, keeping only counters/histograms that moved.

    This is the worker→parent wire payload: gauges are process-local state
    and are dropped, unchanged samples are dropped, and what remains merges
    into the parent registry via :meth:`MetricsRegistry.merge`.
    """
    delta: dict[str, dict[str, Any]] = {}
    for name, entry in current.items():
        kind = entry["type"]
        if kind == "gauge":
            continue
        base_samples = baseline.get(name, {}).get("samples", {})
        samples: dict[_LabelValues, Any] = {}
        for key, value in entry["samples"].items():
            base = base_samples.get(key)
            if kind == "counter":
                moved = value - (base or 0.0)
                if moved > 0:
                    samples[key] = moved
            else:
                base_counts = base["counts"] if base else [0] * len(value["counts"])
                counts = [c - b for c, b in zip(value["counts"], base_counts)]
                if any(counts):
                    samples[key] = {
                        "counts": counts,
                        "sum": value["sum"] - (base["sum"] if base else 0.0),
                        "count": value["count"] - (base["count"] if base else 0),
                    }
        if samples:
            slim = {k: v for k, v in entry.items() if k != "samples"}
            slim["samples"] = samples
            delta[name] = slim
    return delta


def snapshot_jsonable(snap: Mapping[str, Mapping[str, Any]]) -> dict[str, Any]:
    """Re-key a snapshot's tuple label keys as strings for JSON exposition."""
    out: dict[str, Any] = {}
    for name, entry in snap.items():
        labelnames = entry["labelnames"]
        samples = {}
        for key, value in entry["samples"].items():
            label = ",".join(f"{n}={v}" for n, v in zip(labelnames, key)) or "_"
            samples[label] = value
        out[name] = {"type": entry["type"], "samples": samples}
    return out


# --------------------------------------------------------------------------
# Prometheus text exposition
# --------------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_block(labelnames: Iterable[str], values: Iterable[str],
                 extra: tuple[str, str] | None = None) -> str:
    pairs = [f'{name}="{_escape_label(str(value))}"' for name, value in zip(labelnames, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{_escape_label(extra[1])}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format (v0.0.4)."""
    snap = registry.snapshot()
    lines: list[str] = []
    for name in sorted(snap):
        entry = snap[name]
        kind = entry["type"]
        labelnames = entry["labelnames"]
        if entry["help"]:
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(entry["samples"]):
            value = entry["samples"][key]
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_label_block(labelnames, key)} {_format_value(value)}")
                continue
            bounds = entry["buckets"]
            cumulative = 0
            for index, bound in enumerate(bounds):
                cumulative += value["counts"][index]
                block = _label_block(labelnames, key, extra=("le", _format_value(bound)))
                lines.append(f"{name}_bucket{block} {cumulative}")
            block = _label_block(labelnames, key, extra=("le", "+Inf"))
            lines.append(f"{name}_bucket{block} {value['count']}")
            lines.append(f"{name}_sum{_label_block(labelnames, key)} {_format_value(value['sum'])}")
            lines.append(f"{name}_count{_label_block(labelnames, key)} {value['count']}")
    return "\n".join(lines) + "\n"


#: The process-wide registry every layer instruments against.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (what ``/metrics`` exposes)."""
    return _REGISTRY
