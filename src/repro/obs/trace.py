"""Per-campaign trace timelines in the Chrome trace-event JSON format.

A :class:`TraceRecorder` collects *complete* spans (``ph: "X"``), instant
markers (``ph: "i"``) and thread-name metadata, then writes a file Perfetto
and ``chrome://tracing`` open directly::

    {"traceEvents": [...], "displayTimeUnit": "ms"}

Timestamps are epoch-based (``time.time()``) so spans measured in fork
workers land on the same timeline as the parent session, and are stored as
microseconds relative to the recorder's start.  String track names ("main",
"repro-pool-0", ...) map to stable integer ``tid``\\ s with ``thread_name``
metadata events, one lane per worker.

:func:`summarize_trace` aggregates a trace back into per-phase time sinks —
what ``repro trace summary`` prints.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "TraceRecorder",
    "load_trace",
    "summarize_trace",
    "format_trace_summary",
]


class TraceRecorder:
    """Thread-safe collector of Chrome trace events for one campaign/session.

    ``path`` (optional) is where :meth:`write` saves by default; recorders
    are also usable purely in memory (tests, the server's per-run traces).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._events: list[dict[str, Any]] = []
        self._tids: dict[str, int] = {}
        self._pid = os.getpid()
        self.started_at = time.time()

    # -- recording -----------------------------------------------------------

    def _ts(self, epoch_seconds: float) -> float:
        return max(0.0, (epoch_seconds - self.started_at) * 1e6)

    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = self._tids[track] = len(self._tids)
            self._events.append({
                "name": "thread_name", "ph": "M", "pid": self._pid, "tid": tid,
                "args": {"name": track},
            })
        return tid

    def complete(
        self,
        name: str,
        start: float,
        duration: float,
        *,
        track: str = "main",
        category: str = "session",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a finished span: ``start`` is epoch seconds, ``duration`` seconds."""
        with self._lock:
            self._events.append({
                "name": name, "ph": "X", "cat": category,
                "ts": self._ts(start), "dur": max(0.0, duration) * 1e6,
                "pid": self._pid, "tid": self._tid(track),
                "args": dict(args) if args else {},
            })

    def instant(
        self,
        name: str,
        *,
        track: str = "main",
        category: str = "session",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """Record a zero-duration marker (scope ``t`` = thread)."""
        with self._lock:
            self._events.append({
                "name": name, "ph": "i", "s": "t", "cat": category,
                "ts": self._ts(time.time()),
                "pid": self._pid, "tid": self._tid(track),
                "args": dict(args) if args else {},
            })

    @contextmanager
    def span(
        self,
        name: str,
        *,
        track: str = "main",
        category: str = "session",
        args: Mapping[str, Any] | None = None,
    ) -> Iterator[None]:
        """Time a block and record it as a complete span."""
        start = time.time()
        try:
            yield
        finally:
            self.complete(
                name, start, time.time() - start,
                track=track, category=category, args=args,
            )

    # -- output --------------------------------------------------------------

    def events(self) -> list[dict[str, Any]]:
        with self._lock:
            return [dict(event) for event in self._events]

    def write(self, path: str | Path | None = None) -> Path:
        """Write the trace file (pretty enough for diffing, valid for Perfetto)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("trace recorder has no output path")
        target.parent.mkdir(parents=True, exist_ok=True)
        document = {"traceEvents": self.events(), "displayTimeUnit": "ms"}
        target.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
        return target


# --------------------------------------------------------------------------
# Trace analysis (``repro trace summary``)
# --------------------------------------------------------------------------


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load trace events from a file (either the object form or a bare array)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    events = document["traceEvents"] if isinstance(document, dict) else document
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace file")
    return events


def summarize_trace(events: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate complete spans into per-(category, name) time sinks.

    Returns ``{"wall_ms": ..., "rows": [...]}`` where each row carries the
    span name, its category (phase), occurrence count, total/mean/max
    milliseconds and the share of trace wall-clock, sorted by total time
    descending — the "where did the time go" table.
    """
    spans = [event for event in events if event.get("ph") == "X"]
    if not spans:
        return {"wall_ms": 0.0, "rows": []}
    start = min(event["ts"] for event in spans)
    end = max(event["ts"] + event.get("dur", 0.0) for event in spans)
    wall_ms = (end - start) / 1000.0
    sinks: dict[tuple[str, str], dict[str, float]] = {}
    for event in spans:
        key = (str(event.get("cat", "")), str(event["name"]))
        sink = sinks.setdefault(key, {"count": 0, "total_ms": 0.0, "max_ms": 0.0})
        duration_ms = event.get("dur", 0.0) / 1000.0
        sink["count"] += 1
        sink["total_ms"] += duration_ms
        sink["max_ms"] = max(sink["max_ms"], duration_ms)
    rows = [
        {
            "phase": category,
            "name": name,
            "count": int(sink["count"]),
            "total_ms": round(sink["total_ms"], 3),
            "mean_ms": round(sink["total_ms"] / sink["count"], 3),
            "max_ms": round(sink["max_ms"], 3),
            "share": round(sink["total_ms"] / wall_ms, 4) if wall_ms > 0 else 0.0,
        }
        for (category, name), sink in sinks.items()
    ]
    rows.sort(key=lambda row: (-row["total_ms"], row["phase"], row["name"]))
    return {"wall_ms": round(wall_ms, 3), "rows": rows}


def format_trace_summary(summary: Mapping[str, Any], limit: int = 20) -> str:
    """Human-readable top-time-sinks table for ``repro trace summary``."""
    rows = summary["rows"][:limit]
    if not rows:
        return "trace contains no spans\n"
    headers = ("phase", "name", "count", "total_ms", "mean_ms", "max_ms", "share")
    table = [headers] + [
        (
            row["phase"], row["name"], str(row["count"]),
            f"{row['total_ms']:.3f}", f"{row['mean_ms']:.3f}",
            f"{row['max_ms']:.3f}", f"{row['share'] * 100:.1f}%",
        )
        for row in rows
    ]
    widths = [max(len(line[column]) for line in table) for column in range(len(headers))]
    lines = [f"trace wall-clock: {summary['wall_ms']:.3f} ms"]
    for line in table:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip())
    return "\n".join(lines) + "\n"
