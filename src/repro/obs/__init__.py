"""Unified observability layer: metrics registry + trace timelines.

Every layer of the stack instruments against the process-wide registry from
:func:`get_registry`; fork workers ship registry deltas back to the parent
over the pool's result pipes; ``GET /metrics?format=prometheus`` renders the
merged registry.  See ``docs/OBSERVABILITY.md`` for the metric catalog and
the trace quickstart.
"""

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    CounterSync,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    quantile_from_histogram,
    render_prometheus,
    snapshot_delta,
    snapshot_jsonable,
)
from repro.obs.trace import (
    TraceRecorder,
    format_trace_summary,
    load_trace,
    summarize_trace,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "CounterSync",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceRecorder",
    "format_trace_summary",
    "get_registry",
    "load_trace",
    "quantile_from_histogram",
    "render_prometheus",
    "snapshot_delta",
    "snapshot_jsonable",
    "summarize_trace",
]
