"""Campaign sessions: a campaign run as a first-class, observable object.

Historically every entry point — ``run_campaign``, ``run_fuzz``, the CLI,
``analysis/experiments.py`` — was a blocking, fire-and-forget call into the
executor: nothing outside the process could submit work, observe progress, or
consume rows incrementally.  :class:`CampaignSession` replaces that function
call with an object that **owns the whole execution lifecycle** — key
derivation, cache lookup, claim coordination, unit planning, dispatch — and
exposes it incrementally:

* :meth:`CampaignSession.events` — a single-use generator of typed
  :class:`SessionEvent` records (``planned`` / ``claimed`` / ``fallback`` /
  ``unit-committed`` / ``row`` / ``finished``), produced in execution order.
  Row events arrive in **spec order** (the reorder buffer lives here), so a
  consumer that filters for rows gets exactly the old ``execute_specs``
  stream.
* :meth:`CampaignSession.rows` — that filter, for consumers that only want
  the :class:`~repro.engine.spec.TrialResult` stream.
* :meth:`CampaignSession.cancel` — cooperative, thread-safe cancellation:
  the session stops dispatching new work units at the next unit boundary,
  releases its store claims, and leaves the store at a clean committed-unit
  boundary so a later ``--resume`` run recomputes nothing that was already
  acknowledged.  Abandoning the ``events()``/``rows()`` generator (a client
  disconnect, a ``break``) cancels the same way — the generator's ``finally``
  blocks run on close.
* :meth:`CampaignSession.status` — a :class:`CampaignStatus` snapshot
  (state, row counts, cache hits, fallback reasons, throughput), safe to
  call from any thread while the session runs in another.  This is what the
  HTTP server's ``run_id``-addressed status resource serves.

The executor's public functions (:func:`~repro.engine.executor.execute_specs`
and :func:`~repro.engine.executor.run_campaign`) are thin wrappers over a
session, so there is exactly **one** planning/claims/cache code path, and the
rows it emits are byte-identical (modulo ``elapsed_ms``) to the pre-session
engine for every engine, pool and worker count.
"""

from __future__ import annotations

import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Sequence, Union

from repro.engine.campaign import Campaign
from repro.engine.pool import POOL_CHOICES, ExecutionUnit, UnitObservation, execute_plan
from repro.engine.spec import TrialResult, TrialSpec
from repro.engine.trial import run_trial
from repro.engine.vectorized import (
    FallbackReason,
    run_specs_vectorized,
    vectorization_fallback,
    vectorized_group_key,
)
from repro.exceptions import ConfigurationError
from repro.obs.registry import get_registry
from repro.obs.trace import TraceRecorder

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.store.backend import ResultStore

__all__ = [
    "ENGINE_CHOICES",
    "SESSION_STATES",
    "STORE_COMMIT_CHUNK",
    "CampaignSession",
    "CampaignStatus",
    "CampaignSummary",
    "ClaimedEvent",
    "FallbackEvent",
    "FinishedEvent",
    "PlannedEvent",
    "RowEvent",
    "SessionEvent",
    "StoreCacheStats",
    "UnitCommittedEvent",
    "plan_specs",
]

#: Execution substrates the session can route a campaign through.
ENGINE_CHOICES = ("auto", "vectorized", "object")

# Session/store telemetry: planner demotions, row provenance, store cache
# census outcomes and claim contention — all counters that merge across the
# pool workers' registries (though these particular ones only move in the
# session's own process).
_PLAN_FALLBACKS = get_registry().counter(
    "repro_plan_fallbacks_total",
    "Specs the planner routed to the object engine, by fallback reason.",
    labelnames=("reason",),
)
_SESSION_ROWS = get_registry().counter(
    "repro_session_rows_total",
    "Rows emitted by campaign sessions, by provenance (executed/cache/deferred).",
    labelnames=("source",),
)
_STORE_CACHE_LOOKUPS = get_registry().counter(
    "repro_store_cache_lookups_total",
    "Store cache census outcomes across sessions (hit = served, not recomputed).",
    labelnames=("outcome",),
)
_STORE_CLAIM_WAIT = get_registry().histogram(
    "repro_store_claim_wait_seconds",
    "Time spent waiting on trials claimed by concurrent sessions.",
    buckets=(0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0),
)

#: Lifecycle states a session moves through (strictly forward).
SESSION_STATES = ("pending", "running", "finished", "cancelled", "failed")


def plan_specs(
    specs: Sequence[TrialSpec],
    engine: str = "auto",
    fallback_reasons: dict[str, int] | None = None,
) -> list[ExecutionUnit]:
    """Partition a spec list into columnar groups and object-engine chunks.

    Eligible specs are grouped by
    :func:`~repro.engine.vectorized.vectorized_group_key`; everything else
    stays on the object engine.  ``engine="auto"`` sends singleton groups to
    the object engine too (a batch of one amortises nothing);
    ``engine="vectorized"`` routes every eligible spec columnar;
    ``engine="object"`` plans one object chunk.

    ``fallback_reasons`` — when provided — is filled with a count per
    :class:`~repro.engine.vectorized.FallbackReason` value for every spec the
    plan routes to the object engine, so a campaign summary can say *why*
    trials missed the columnar engine instead of silently falling back.
    """
    if engine not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINE_CHOICES)}"
        )

    def count_fallback(reason: FallbackReason, occurrences: int = 1) -> None:
        if occurrences:
            _PLAN_FALLBACKS.labels(reason=reason.value).inc(occurrences)
        if fallback_reasons is not None and occurrences:
            fallback_reasons[reason.value] = (
                fallback_reasons.get(reason.value, 0) + occurrences
            )

    if engine == "object":
        count_fallback(FallbackReason.FORCED_OBJECT, len(specs))
        return [ExecutionUnit("object", tuple(range(len(specs))))] if specs else []
    groups: dict[tuple, list[int]] = {}
    fallback: list[int] = []
    for position, spec in enumerate(specs):
        reason = vectorization_fallback(spec)
        if reason is None:
            groups.setdefault(vectorized_group_key(spec), []).append(position)
        else:
            fallback.append(position)
            count_fallback(reason)
    units: list[ExecutionUnit] = []
    for positions in groups.values():
        if engine == "auto" and len(positions) < 2:
            fallback.extend(positions)
            count_fallback(FallbackReason.SINGLETON_GROUP, len(positions))
        else:
            units.append(ExecutionUnit("columnar", tuple(positions)))
    if fallback:
        units.append(ExecutionUnit("object", tuple(sorted(fallback))))
    units.sort(key=lambda unit: unit.positions[0])
    return units


def _execute_unit(unit: ExecutionUnit, specs: Sequence[TrialSpec]) -> list[TrialResult]:
    if unit.kind == "columnar":
        return run_specs_vectorized([specs[position] for position in unit.positions])
    return [run_trial(specs[position]) for position in unit.positions]


@dataclass
class StoreCacheStats:
    """Cache outcome of one store-backed session (filled as it runs)."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of specs served from the store (0.0 on an empty spec list)."""
        return self.hits / self.total if self.total else 0.0


#: Object-engine units are re-chunked to at most this many trials in store
#: mode, bounding how much completed work one interruption can lose (each
#: chunk commits transactionally on completion).  Kept small: a store commit
#: costs milliseconds while a protocol trial costs ~a second, so a narrow
#: loss window is nearly free.
STORE_COMMIT_CHUNK = 4

#: Cache hits are fetched from the store in slices of this many rows at
#: emission time, keeping warm-resume memory bounded by the batch size (plus
#: the reorder window) instead of the campaign size.
_SERVE_BATCH = 1024


def _split_units_for_commit(units: list[ExecutionUnit]) -> list[ExecutionUnit]:
    """Cap object units at :data:`STORE_COMMIT_CHUNK` trials per transaction.

    Columnar units ship whole — the batch is solved as one array program, so
    it completes (and commits) as one unit anyway.
    """
    split: list[ExecutionUnit] = []
    for unit in units:
        if unit.kind == "object" and len(unit.positions) > STORE_COMMIT_CHUNK:
            for start in range(0, len(unit.positions), STORE_COMMIT_CHUNK):
                split.append(
                    ExecutionUnit("object", unit.positions[start : start + STORE_COMMIT_CHUNK])
                )
        else:
            split.append(unit)
    return split


# ---------------------------------------------------------------------------
# Typed progress events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SessionEvent:
    """Base class for session progress events (``type`` identifies the kind)."""

    type = "event"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.type}


@dataclass(frozen=True)
class PlannedEvent(SessionEvent):
    """The executable plan is fixed: unit counts plus the cache census."""

    trials: int
    executed: int
    cache_hits: int
    columnar_units: int
    object_units: int

    type = "planned"

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.type,
            "trials": self.trials,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "columnar_units": self.columnar_units,
            "object_units": self.object_units,
        }


@dataclass(frozen=True)
class ClaimedEvent(SessionEvent):
    """Cross-process claim outcome: granted keys run here, deferred elsewhere."""

    granted: int
    deferred: int

    type = "claimed"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.type, "granted": self.granted, "deferred": self.deferred}


@dataclass(frozen=True)
class FallbackEvent(SessionEvent):
    """Planner demotions to the object engine, one event per reason."""

    reason: str
    count: int

    type = "fallback"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.type, "reason": self.reason, "count": self.count}


@dataclass(frozen=True)
class UnitCommittedEvent(SessionEvent):
    """One execution unit completed (and, with a store, committed)."""

    kind: str
    positions: tuple[int, ...]
    committed: bool

    type = "unit-committed"

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": self.type,
            "kind": self.kind,
            "trials": len(self.positions),
            "committed": self.committed,
        }


@dataclass(frozen=True)
class RowEvent(SessionEvent):
    """One trial row, emitted in spec order.

    ``source`` says which side of the cache it came from: ``"executed"``
    (ran here), ``"cache"`` (served from the store), or ``"deferred"``
    (committed by a concurrent session and served as a hit).
    """

    position: int
    result: TrialResult
    source: str

    type = "row"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.type, "position": self.position, "source": self.source}


@dataclass(frozen=True)
class FinishedEvent(SessionEvent):
    """Terminal event: the final status snapshot (always the last event)."""

    status: "CampaignStatus"

    type = "finished"

    def to_dict(self) -> dict[str, Any]:
        return {"type": self.type, "status": self.status.to_dict()}


# ---------------------------------------------------------------------------
# Status + summary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CampaignStatus:
    """Point-in-time snapshot of a session (safe to take from any thread)."""

    run_id: str
    name: str
    state: str
    trials: int
    emitted: int
    ok: int
    errors: int
    agreement_failures: int
    validity_failures: int
    cache_hits: int
    deferred: int
    fallback_reasons: dict[str, int]
    workers: int
    engine: str
    pool: str
    elapsed_seconds: float
    error: str | None = None

    @property
    def trials_per_second(self) -> float:
        """Emission throughput so far, clamped to 0.0 when no time elapsed."""
        return self.emitted / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    @property
    def done(self) -> bool:
        return self.state in ("finished", "cancelled", "failed")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable view (the server's status resource body)."""
        return {
            "run_id": self.run_id,
            "name": self.name,
            "state": self.state,
            "trials": self.trials,
            "emitted": self.emitted,
            "ok": self.ok,
            "errors": self.errors,
            "agreement_failures": self.agreement_failures,
            "validity_failures": self.validity_failures,
            "cache_hits": self.cache_hits,
            "deferred": self.deferred,
            "fallback_reasons": dict(self.fallback_reasons),
            "workers": self.workers,
            "engine": self.engine,
            "pool": self.pool,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "trials_per_second": round(self.trials_per_second, 1),
            "error": self.error,
        }


@dataclass(frozen=True)
class CampaignSummary:
    """Aggregate view of a finished campaign run."""

    name: str
    trials: int
    ok: int
    errors: int
    agreement_failures: int
    validity_failures: int
    elapsed_seconds: float
    workers: int
    jsonl_path: str | None
    engine: str = "object"
    #: Dispatch substrate used for multi-worker execution (:data:`POOL_CHOICES`).
    pool: str = "persistent"
    #: Trials served straight from the results store (0 without a store).
    cache_hits: int = 0
    #: Executed trials the planner routed to the object engine, counted per
    #: :class:`~repro.engine.vectorized.FallbackReason` value.  Store-served
    #: trials are never planned, so they are not counted here.
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    #: Identifier of the session that produced this summary ("" for summaries
    #: built by hand, e.g. in tests).
    run_id: str = ""

    @property
    def trials_per_second(self) -> float:
        """Throughput, clamped to 0.0 when no time was measured.

        A zero-length (or clock-resolution-zero) run must not report
        ``inf``: ``json.dumps`` would emit ``Infinity``, which is not valid
        JSON and breaks downstream row consumers.
        """
        return self.trials / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def to_row(self) -> dict[str, Any]:
        """One table row for the CLI / benchmarks."""
        return {
            "campaign": self.name,
            "engine": self.engine,
            "trials": self.trials,
            "ok": self.ok,
            "errors": self.errors,
            "agreement_failures": self.agreement_failures,
            "validity_failures": self.validity_failures,
            "workers": self.workers,
            "pool": self.pool,
            "cache_hits": self.cache_hits,
            "fallbacks": sum(self.fallback_reasons.values()),
            "seconds": round(self.elapsed_seconds, 3),
            "trials_per_s": round(self.trials_per_second, 1),
        }


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------


class CampaignSession:
    """One observable campaign execution (see module docstring).

    ``campaign`` is a :class:`~repro.engine.campaign.Campaign` or a plain
    spec sequence (kept verbatim — positions and ``trial_index`` values are
    never rewritten here, so rows stay byte-identical to the specs given).
    ``store`` is a :class:`~repro.store.backend.ResultStore`, a path (opened
    on start and closed when the session ends), or ``None`` for uncached
    execution.  The session is single-shot: :meth:`events` (or
    :meth:`rows`) may be consumed once.
    """

    def __init__(
        self,
        campaign: Union[Campaign, Sequence[TrialSpec]],
        *,
        name: str | None = None,
        workers: int = 1,
        chunksize: int | None = None,
        engine: str = "auto",
        store: "ResultStore | str | Path | None" = None,
        reuse_cached: bool = True,
        pool: str = "persistent",
        claim_wait_timeout: float = 60.0,
        run_id: str | None = None,
        cache_stats: StoreCacheStats | None = None,
        fallback_reasons: dict[str, int] | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        if engine not in ENGINE_CHOICES:
            raise ConfigurationError(
                f"unknown engine {engine!r}; known: {', '.join(ENGINE_CHOICES)}"
            )
        if pool not in POOL_CHOICES:
            raise ConfigurationError(
                f"unknown pool {pool!r}; known: {', '.join(POOL_CHOICES)}"
            )
        if isinstance(campaign, Campaign):
            self.specs: tuple[TrialSpec, ...] = campaign.specs
            self.name = name if name is not None else campaign.name
        else:
            self.specs = tuple(campaign)
            self.name = name if name is not None else "session"
        self.workers = workers
        self.chunksize = chunksize
        self.engine = engine
        self.pool = pool
        self.reuse_cached = reuse_cached
        self.claim_wait_timeout = claim_wait_timeout
        #: Session identity: names the run in summaries and the HTTP API, and
        #: doubles as the claim owner id, so ``repro store claims`` attributes
        #: outstanding claims to the session that holds them.
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:16]
        self.cache_stats = cache_stats if cache_stats is not None else StoreCacheStats()
        self.fallback_reasons = fallback_reasons if fallback_reasons is not None else {}
        #: Optional per-session trace recorder: the session records phase and
        #: per-unit spans (worker spans land on per-worker tracks) as it runs.
        #: The caller owns writing the file — see ``--trace`` on the CLI.
        self.trace = trace

        self._store_arg = store
        self._store: "ResultStore | None" = None
        self._owns_store = False
        self._cancel = threading.Event()
        self._lock = threading.Lock()
        self._state = "pending"
        self._started = False
        self._error: str | None = None
        self._start_time: float | None = None
        self._end_time: float | None = None
        self._emitted = 0
        self._ok = 0
        self._errors = 0
        self._agreement_failures = 0
        self._validity_failures = 0
        self._deferred_served = 0

    # -- observation ---------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def cancel(self) -> None:
        """Request cooperative cancellation (thread-safe, idempotent).

        The session stops dispatching work at the next unit boundary,
        releases its claims, and ends in state ``"cancelled"``.  Rows already
        committed to the store stay committed — a later resume serves them as
        cache hits and recomputes nothing.
        """
        self._cancel.set()

    def status(self) -> CampaignStatus:
        """A consistent point-in-time snapshot (safe from any thread)."""
        with self._lock:
            if self._start_time is None:
                elapsed = 0.0
            else:
                end = self._end_time if self._end_time is not None else time.perf_counter()
                elapsed = end - self._start_time
            return CampaignStatus(
                run_id=self.run_id,
                name=self.name,
                state=self._state,
                trials=len(self.specs),
                emitted=self._emitted,
                ok=self._ok,
                errors=self._errors,
                agreement_failures=self._agreement_failures,
                validity_failures=self._validity_failures,
                cache_hits=self.cache_stats.hits,
                deferred=self._deferred_served,
                fallback_reasons=dict(self.fallback_reasons),
                workers=self.workers,
                engine=self.engine,
                pool=self.pool,
                elapsed_seconds=elapsed,
                error=self._error,
            )

    def summary(self, jsonl_path: str | Path | None = None) -> CampaignSummary:
        """The run's :class:`CampaignSummary` (meaningful once finished)."""
        status = self.status()
        return CampaignSummary(
            name=self.name,
            trials=status.trials,
            ok=status.ok,
            errors=status.errors,
            agreement_failures=status.agreement_failures,
            validity_failures=status.validity_failures,
            elapsed_seconds=status.elapsed_seconds,
            workers=self.workers,
            jsonl_path=str(jsonl_path) if jsonl_path is not None else None,
            engine=self.engine,
            pool=self.pool,
            cache_hits=status.cache_hits,
            fallback_reasons=dict(self.fallback_reasons),
            run_id=self.run_id,
        )

    # -- consumption ---------------------------------------------------------

    def rows(self) -> Iterator[TrialResult]:
        """Yield each trial's result in spec order (filters :meth:`events`)."""
        for event in self.events():
            if isinstance(event, RowEvent):
                yield event.result

    def events(self) -> Iterator[SessionEvent]:
        """Yield typed progress events until the session reaches a terminal state.

        Single-use.  Abandoning the generator (``close()``, ``break``, a
        dropped reference) runs the same cleanup as :meth:`cancel`: claims
        are released, the pool stops receiving new units, and the session
        ends in state ``"cancelled"`` unless it had already finished.
        """
        with self._lock:
            if self._started:
                raise RuntimeError(
                    f"session {self.run_id} already consumed; sessions are single-use"
                )
            self._started = True
            self._state = "running"
            self._start_time = time.perf_counter()
        start_epoch = time.time()
        try:
            try:
                self._open_store()
                if self._store is None:
                    yield from self._traced(self._events_plain())
                else:
                    yield from self._traced(self._events_stored())
            except GeneratorExit:
                self._cancel.set()
                self._finish("cancelled")
                raise
            except BaseException as error:
                self._error = f"{type(error).__name__}: {error}"
                self._finish("failed")
                raise
            self._finish("cancelled" if self._cancel.is_set() else "finished")
            finished = FinishedEvent(status=self.status())
            if self.trace is not None:
                self.trace.complete(
                    "session", start_epoch, time.time() - start_epoch,
                    category="lifecycle",
                    args={"run_id": self.run_id, "state": self._state},
                )
                self._trace_instant(finished)
            yield finished
        finally:
            self._close_store()
            if self._state == "running":  # pragma: no cover — belt and braces
                self._finish("cancelled")

    # -- internals -----------------------------------------------------------

    def _open_store(self) -> None:
        store = self._store_arg
        if isinstance(store, (str, Path)):
            from repro.store.backend import open_store

            self._store = open_store(store)
            self._owns_store = True
        else:
            self._store = store

    def _close_store(self) -> None:
        if self._owns_store and self._store is not None:
            try:
                self._store.close()
            finally:
                self._store = None

    def _finish(self, state: str) -> None:
        with self._lock:
            if self._state in ("finished", "cancelled", "failed"):
                return
            self._state = state
            self._end_time = time.perf_counter()

    def _row_event(self, position: int, result: TrialResult, source: str) -> RowEvent:
        with self._lock:
            self._emitted += 1
            if source == "deferred":
                self._deferred_served += 1
            if result.ok:
                self._ok += 1
                if result.agreement is False:
                    self._agreement_failures += 1
                if result.validity is False:
                    self._validity_failures += 1
            else:
                self._errors += 1
        _SESSION_ROWS.labels(source=source).inc()
        return RowEvent(position=position, result=result, source=source)

    def _fallback_events(self, before: dict[str, int]) -> list[FallbackEvent]:
        events = []
        for reason, count in sorted(self.fallback_reasons.items()):
            delta = count - before.get(reason, 0)
            if delta:
                events.append(FallbackEvent(reason=reason, count=delta))
        return events

    def _planned_event(self, units: Sequence[ExecutionUnit], executed: int) -> PlannedEvent:
        return PlannedEvent(
            trials=len(self.specs),
            executed=executed,
            cache_hits=self.cache_stats.hits,
            columnar_units=sum(1 for unit in units if unit.kind == "columnar"),
            object_units=sum(1 for unit in units if unit.kind == "object"),
        )

    def _trace_instant(self, event: SessionEvent) -> None:
        if self.trace is not None:
            self.trace.instant(event.type, category="session", args=event.to_dict())

    def _traced(self, source: Iterator[SessionEvent]) -> Iterator[SessionEvent]:
        """Mirror every non-row typed event into the trace as an instant marker."""
        if self.trace is None:
            yield from source
            return
        for event in source:
            if not isinstance(event, RowEvent):
                self._trace_instant(event)
            yield event

    def _run_unit_traced(
        self, unit: ExecutionUnit, specs: Sequence[TrialSpec]
    ) -> list[TrialResult]:
        """Execute a unit inline, recording its span when tracing is on."""
        if self.trace is None:
            return _execute_unit(unit, specs)
        start = time.time()
        unit_result = _execute_unit(unit, specs)
        self.trace.complete(
            f"unit:{unit.kind}", start, time.time() - start,
            category="execute", args={"trials": len(unit.positions)},
        )
        return unit_result

    def _on_pool_unit(self, observation: UnitObservation) -> None:
        """Place a pool-completed unit on its worker's trace track."""
        if self.trace is None:
            return
        started = observation.started_at or (time.time() - observation.seconds)
        self.trace.complete(
            f"unit:{observation.kind}", started, observation.seconds,
            track=observation.worker or "pool", category="execute",
            args={"trials": observation.trials},
        )

    def _cancellable(self, units: Sequence[ExecutionUnit]) -> Iterator[ExecutionUnit]:
        """Stop feeding plan units to the pool once cancellation is requested."""
        for unit in units:
            if self._cancel.is_set():
                return
            yield unit

    # -- uncached execution (the old execute_specs streaming path) -----------

    def _events_plain(self) -> Iterator[SessionEvent]:
        specs = self.specs
        engine, workers = self.engine, self.workers
        if engine == "object" and (workers <= 1 or len(specs) <= 1):
            # The object fast path bypasses planning; run the planner purely
            # for its fallback accounting.
            before = dict(self.fallback_reasons)
            plan_specs(specs, engine, self.fallback_reasons)
            yield self._planned_event([], executed=len(specs))
            yield from self._fallback_events(before)
            for position, spec in enumerate(specs):
                if self._cancel.is_set():
                    return
                yield self._row_event(position, run_trial(spec), "executed")
            return

        before = dict(self.fallback_reasons)
        units = plan_specs(specs, engine, self.fallback_reasons)
        yield self._planned_event(units, executed=len(specs))
        yield from self._fallback_events(before)
        # Reorder buffer: holds only results that arrived ahead of spec
        # order; every emitted result is released immediately, so memory
        # stays bounded by the out-of-order window, not the campaign size.
        pending: dict[int, TrialResult] = {}
        emitted = 0

        def _drain(
            positions: Sequence[int], unit_result: list[TrialResult]
        ) -> Iterator[SessionEvent]:
            nonlocal emitted
            for position, result in zip(positions, unit_result):
                pending[position] = result
            # Stream every prefix-complete result so sinks fill while later
            # units are still running.
            while emitted in pending:
                yield self._row_event(emitted, pending.pop(emitted), "executed")
                emitted += 1

        if workers <= 1 or len(specs) <= 1:
            for unit in units:
                if self._cancel.is_set():
                    return
                unit_result = self._run_unit_traced(unit, specs)
                yield UnitCommittedEvent(unit.kind, unit.positions, committed=False)
                yield from _drain(unit.positions, unit_result)
            return
        # The pool cuts every unit — object chunks *and* columnar groups —
        # into cost-model-sized tasks and yields them in completion order;
        # the reorder buffer above restores spec order.  Closing this loop
        # early (cancel) closes execute_plan, which drains in-flight units
        # without dispatching new ones.
        for positions, unit_result in execute_plan(
            specs, list(self._cancellable(units)), workers, self.chunksize, self.pool,
            on_unit=self._on_pool_unit if self.trace is not None else None,
        ):
            yield UnitCommittedEvent("task", tuple(positions), committed=False)
            yield from _drain(positions, unit_result)
            if self._cancel.is_set():
                return

    # -- store-backed execution (the old _execute_specs_stored path) ---------

    def _events_stored(self) -> Iterator[SessionEvent]:
        """Serve cached rows, claim and run misses, commit per unit.

        ``record_history`` specs are never *served* from the store (per-round
        state histories are not serialised, so a cached row cannot satisfy
        the in-memory consumer), but their rows are still recorded — under a
        key that, by construction, a history-free spec resolves to as well.

        Before executing, each miss key is **claimed** on the store: keys
        another session already holds are *deferred* — this run polls for the
        owner's committed rows and serves them as cache hits instead of
        recomputing.  A deferred trial whose owner never commits (crash,
        timeout) is recomputed locally after ``claim_wait_timeout`` seconds,
        so the campaign always completes.  Single-writer backends grant every
        claim, making this path identical to uncoordinated execution.
        """
        from repro.store.keys import trial_key

        specs = self.specs
        store = self._store
        assert store is not None
        cache_stats = self.cache_stats

        keys = [trial_key(spec) for spec in specs]
        # Only the *keys* of cache hits are held for the whole run; the rows
        # themselves are fetched in _SERVE_BATCH-sized slices at emission
        # time, so a warm million-trial resume never materialises the
        # campaign.
        hit_keys: dict[int, str] = {}
        census_start = time.time()
        if self.reuse_cached:
            servable = [key for spec, key in zip(specs, keys) if not spec.record_history]
            present = store.contains_keys(servable)
            for position, (spec, key) in enumerate(zip(specs, keys)):
                if not spec.record_history and key in present:
                    hit_keys[position] = key
        with self._lock:
            cache_stats.hits = len(hit_keys)
            cache_stats.misses = len(specs) - len(hit_keys)
        _STORE_CACHE_LOOKUPS.labels(outcome="hit").inc(len(hit_keys))
        _STORE_CACHE_LOOKUPS.labels(outcome="miss").inc(len(specs) - len(hit_keys))
        if self.trace is not None:
            self.trace.complete(
                "cache-census", census_start, time.time() - census_start,
                category="store",
                args={"hits": len(hit_keys), "misses": len(specs) - len(hit_keys)},
            )
        miss_positions = [position for position in range(len(specs)) if position not in hit_keys]

        # Claim the misses so concurrent sessions over this store split the
        # work: denied keys are being computed elsewhere — defer them and
        # serve the other session's rows.  record_history misses always run
        # locally (a stored row cannot carry the in-memory histories).
        deferred: dict[int, str] = {}
        claimed_keys: list[str] = []
        if self.reuse_cached and miss_positions:
            claimable = list(
                dict.fromkeys(
                    keys[position]
                    for position in miss_positions
                    if not specs[position].record_history
                )
            )
            granted = store.claim_keys(claimable, self.run_id) if claimable else set()
            claimed_keys = [key for key in claimable if key in granted]
            for position in miss_positions:
                if not specs[position].record_history and keys[position] not in granted:
                    deferred[position] = keys[position]
        run_positions = [position for position in miss_positions if position not in deferred]
        run_specs = [specs[position] for position in run_positions]
        yield ClaimedEvent(granted=len(claimed_keys), deferred=len(deferred))

        pending: dict[int, TrialResult] = {}
        emitted = 0

        def _drain() -> Iterator[SessionEvent]:
            nonlocal emitted
            while True:
                if emitted in pending:
                    yield self._row_event(emitted, pending.pop(emitted), "executed")
                    emitted += 1
                elif emitted in hit_keys:
                    # Serve the next contiguous run of cached positions in
                    # one bounded fetch.
                    batch = []
                    position = emitted
                    while position in hit_keys and len(batch) < _SERVE_BATCH:
                        batch.append(position)
                        position += 1
                    rows = store.get_rows([hit_keys[position] for position in batch])
                    for position in batch:
                        row = rows.get(hit_keys[position])
                        if row is None:
                            raise RuntimeError(
                                f"store row for trial {position} vanished during execution; "
                                "result stores must not be mutated concurrently with a run"
                            )
                        # Reattach the *requested* spec: the stored row may
                        # carry a different trial_index (key-excluded field),
                        # and the emitted row must be byte-identical to a
                        # fresh run.
                        yield self._row_event(
                            position,
                            replace(TrialResult.from_row(row), spec=specs[position]),
                            "cache",
                        )
                        del hit_keys[position]
                        emitted = position + 1
                elif emitted in deferred:
                    # Another session owns these trials; serve whatever it
                    # has committed so far, stopping at the first absent row.
                    batch = []
                    position = emitted
                    while position in deferred and len(batch) < _SERVE_BATCH:
                        batch.append(position)
                        position += 1
                    rows = store.get_rows([deferred[position] for position in batch])
                    progressed = False
                    for position in batch:
                        row = rows.get(deferred[position])
                        if row is None:
                            break
                        with self._lock:
                            cache_stats.hits += 1
                            cache_stats.misses -= 1
                        yield self._row_event(
                            position,
                            replace(TrialResult.from_row(row), spec=specs[position]),
                            "deferred",
                        )
                        del deferred[position]
                        emitted = position + 1
                        progressed = True
                    if not progressed:
                        return
                else:
                    return

        def _commit(local_positions: Sequence[int], unit_result: list[TrialResult]) -> None:
            # Commit-then-emit: once a row has been yielded downstream, it is
            # guaranteed to be in the store, so resuming after an
            # interruption can never lose acknowledged work.
            store.put_results(
                (keys[run_positions[local]], result)
                for local, result in zip(local_positions, unit_result)
            )
            for local, result in zip(local_positions, unit_result):
                pending[run_positions[local]] = result

        try:
            # Serve every prefix-complete cached row before execution starts.
            yield from _drain()
            before = dict(self.fallback_reasons)
            units = _split_units_for_commit(
                plan_specs(run_specs, self.engine, self.fallback_reasons)
            )
            yield self._planned_event(units, executed=len(run_specs))
            yield from self._fallback_events(before)
            if self.workers <= 1 or len(run_specs) <= 1:
                for unit in units:
                    if self._cancel.is_set():
                        return
                    unit_result = self._run_unit_traced(unit, run_specs)
                    _commit(unit.positions, unit_result)
                    yield UnitCommittedEvent(unit.kind, unit.positions, committed=True)
                    yield from _drain()
            else:
                for local_positions, unit_result in execute_plan(
                    run_specs,
                    list(self._cancellable(units)),
                    self.workers,
                    self.chunksize,
                    self.pool,
                    on_unit=self._on_pool_unit if self.trace is not None else None,
                ):
                    _commit(local_positions, unit_result)
                    yield UnitCommittedEvent("task", tuple(local_positions), committed=True)
                    yield from _drain()
                    if self._cancel.is_set():
                        return

            # Wait out trials owned by other sessions, then recompute
            # leftovers.
            if deferred:
                wait_start = time.monotonic()
                deadline = wait_start + self.claim_wait_timeout
                delay = 0.05
                try:
                    while deferred and time.monotonic() < deadline:
                        if self._cancel.is_set():
                            return
                        before_count = len(deferred)
                        yield from _drain()
                        if deferred and len(deferred) == before_count:
                            time.sleep(delay)
                            delay = min(delay * 1.6, 1.0)
                finally:
                    _STORE_CLAIM_WAIT.observe(time.monotonic() - wait_start)
            if deferred and not self._cancel.is_set():
                # The owning session never committed (crashed or stuck):
                # finish its share ourselves.  Last-write-wins commits keep
                # this safe even if it eventually completes too.
                retry_positions = sorted(deferred)
                retry_specs = [specs[position] for position in retry_positions]
                for unit in _split_units_for_commit(
                    plan_specs(retry_specs, self.engine, self.fallback_reasons)
                ):
                    if self._cancel.is_set():
                        return
                    unit_result = self._run_unit_traced(unit, retry_specs)
                    store.put_results(
                        (keys[retry_positions[local]], result)
                        for local, result in zip(unit.positions, unit_result)
                    )
                    for local, result in zip(unit.positions, unit_result):
                        pending[retry_positions[local]] = result
                        deferred.pop(retry_positions[local], None)
                    yield UnitCommittedEvent(unit.kind, unit.positions, committed=True)
                    yield from _drain()
        finally:
            if claimed_keys:
                try:
                    store.release_claims(claimed_keys, self.run_id)
                except Exception:  # noqa: BLE001 — claims expire by TTL anyway
                    pass
