"""Execute one :class:`~repro.engine.spec.TrialSpec` into a ``TrialResult``.

:func:`run_trial` is a pure function of its spec (all randomness flows through
the spec's seeds), which is what makes campaign results independent of worker
count and execution order.  It is a module-level function so worker processes
can receive it by name.

Protocol failures (liveness violations, resilience-check rejections, …) are
*data*, not crashes: campaigns deliberately sweep regions where the paper says
an algorithm must fail, so exceptions are captured into ``status="error"``
rows instead of tearing down the sweep.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Sequence

from repro.core.baselines import run_coordinatewise_consensus
from repro.core.approx_bvc import run_approx_bvc
from repro.core.exact_bvc import run_exact_bvc
from repro.core.restricted_async import run_restricted_async_bvc
from repro.core.restricted_sync import run_restricted_sync_bvc
from repro.core.validity import check_approximate_outcome, check_exact_outcome
from repro.engine.factories import build_registry, build_scheduler, make_adversaries
from repro.engine.spec import TrialResult, TrialSpec

__all__ = ["run_trial", "run_trials"]


def run_trials(specs: "Sequence[TrialSpec]") -> list[TrialResult]:
    """Run a chunk of specs back to back (the worker pool's object-unit entry).

    A trivial loop, kept as a named module-level function so worker processes
    can execute whole sized units per dispatch instead of one round-trip per
    trial.
    """
    return [run_trial(spec) for spec in specs]


def run_trial(spec: TrialSpec) -> TrialResult:
    """Run the protocol execution the spec describes and measure its outcome."""
    start = time.perf_counter()
    try:
        result = _execute(spec)
    except Exception as error:  # noqa: BLE001 — failures are campaign data
        result = TrialResult(spec=spec, status="error", error=f"{type(error).__name__}: {error}")
    elapsed_ms = (time.perf_counter() - start) * 1e3
    return dataclasses.replace(result, elapsed_ms=elapsed_ms)


def _execute(spec: TrialSpec) -> TrialResult:
    registry = build_registry(spec)
    adversary = make_adversaries(spec, registry)
    mutators = adversary.mutators
    # Coordinated adversaries watch the whole execution's traffic (the
    # paper's full-information adversary); independent strategies get no tap.
    observer = adversary.traffic_observer

    deliveries = None
    state_histories = None
    if spec.protocol == "exact":
        outcome = run_exact_bvc(
            registry,
            adversary_mutators=mutators,
            max_rounds=spec.max_rounds_override,
            traffic_observer=observer,
        )
        report = check_exact_outcome(registry, outcome.decisions)
    elif spec.protocol == "coordinatewise":
        outcome = run_coordinatewise_consensus(
            registry,
            adversary_mutators=mutators,
            max_rounds=spec.max_rounds_override,
            traffic_observer=observer,
        )
        report = check_exact_outcome(registry, outcome.decisions)
    elif spec.protocol == "approx":
        outcome = run_approx_bvc(
            registry,
            epsilon=spec.epsilon,
            adversary_mutators=mutators,
            scheduler=build_scheduler(spec, registry),
            max_rounds_override=spec.max_rounds_override,
            traffic_observer=observer,
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=spec.epsilon)
        deliveries = outcome.deliveries
        state_histories = outcome.state_histories if spec.record_history else None
    elif spec.protocol == "restricted_sync":
        outcome = run_restricted_sync_bvc(
            registry,
            epsilon=spec.epsilon,
            adversary_mutators=mutators,
            max_rounds_override=spec.max_rounds_override,
            traffic_observer=observer,
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=spec.epsilon)
        state_histories = outcome.state_histories if spec.record_history else None
    elif spec.protocol == "restricted_async":
        outcome = run_restricted_async_bvc(
            registry,
            epsilon=spec.epsilon,
            adversary_mutators=mutators,
            scheduler=build_scheduler(spec, registry),
            max_rounds_override=spec.max_rounds_override,
            traffic_observer=observer,
        )
        report = check_approximate_outcome(registry, outcome.decisions, epsilon=spec.epsilon)
        state_histories = outcome.state_histories if spec.record_history else None
    else:  # pragma: no cover — TrialSpec validates the protocol name
        raise ValueError(f"unknown protocol {spec.protocol!r}")

    first_honest = registry.honest_ids[0]
    return TrialResult(
        spec=spec,
        status="ok",
        agreement=report.agreement_ok,
        validity=report.validity_ok,
        max_disagreement=float(report.max_disagreement),
        max_hull_distance=float(report.max_hull_distance),
        rounds=outcome.rounds_executed,
        deliveries=deliveries,
        messages_sent=outcome.messages_sent,
        messages_dropped=outcome.messages_dropped,
        decision=tuple(float(x) for x in outcome.decisions[first_honest]),
        state_histories=state_histories,
    )
