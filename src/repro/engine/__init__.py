"""Unified simulation engine: declarative trials, campaigns, parallel sweeps.

The engine turns "run this protocol once" into "run thousands of (protocol,
workload, adversary, scheduler, seed) configurations fast and reproducibly":

* :class:`~repro.engine.spec.TrialSpec` — one execution as plain data;
* :func:`~repro.engine.trial.run_trial` — spec in, flat
  :class:`~repro.engine.spec.TrialResult` out (a pure function of the spec);
* :class:`~repro.engine.campaign.Campaign` — grid declarations expanded into
  deterministic trial lists with ``SeedSequence.spawn`` seed derivation;
* :class:`~repro.engine.session.CampaignSession` — one observable campaign
  execution: typed progress events, spec-order row streaming, cooperative
  cancellation, status snapshots;
* :func:`~repro.engine.executor.run_campaign` — sequential or worker-pool
  execution streaming into a JSONL sink (a thin wrapper over a session).

The experiment runners in :mod:`repro.analysis.experiments` and the
``python -m repro.cli campaign`` command are thin layers over this module.
"""

from repro.engine.campaign import Campaign, parameter_grid
from repro.engine.executor import (
    ENGINE_CHOICES,
    CampaignSummary,
    ExecutionUnit,
    JsonlSink,
    StoreCacheStats,
    execute_specs,
    iter_jsonl,
    plan_specs,
    read_jsonl,
    run_campaign,
    strip_timing,
)
from repro.engine.session import (
    SESSION_STATES,
    CampaignSession,
    CampaignStatus,
    ClaimedEvent,
    FallbackEvent,
    FinishedEvent,
    PlannedEvent,
    RowEvent,
    SessionEvent,
    UnitCommittedEvent,
)
from repro.engine.pool import (
    POOL_CHOICES,
    CostModel,
    UnitObservation,
    WorkerPool,
    execute_plan,
    get_pool,
    pool_metrics,
    shutdown_pools,
)
from repro.engine.factories import (
    ADVERSARY_NAMES,
    COORDINATED_STRATEGY_NAMES,
    SCHEDULER_NAMES,
    STRATEGY_NAMES,
    WORKLOAD_NAMES,
    AdversaryBundle,
    build_mutators,
    build_registry,
    build_scheduler,
    derive_faulty_seeds,
    make_adversaries,
    make_strategy,
    minimum_processes_for,
)
from repro.engine.fuzz import (
    FUZZ_ADVERSARIES,
    FUZZ_PROTOCOLS,
    FUZZ_WORKLOADS,
    FuzzReport,
    FuzzViolation,
    run_fuzz,
    sample_specs,
)
from repro.engine.spec import PROTOCOLS, TrialResult, TrialSpec
from repro.engine.trial import run_trial
from repro.engine.vectorized import (
    VECTORIZED_ASYNC_SCHEDULERS,
    VECTORIZED_RESTRICTED_ADVERSARIES,
    FallbackReason,
    run_specs_vectorized,
    spec_is_vectorizable,
    vectorization_fallback,
    vectorized_group_key,
    vectorized_stats_snapshot,
)

__all__ = [
    "ADVERSARY_NAMES",
    "COORDINATED_STRATEGY_NAMES",
    "ENGINE_CHOICES",
    "FUZZ_ADVERSARIES",
    "FUZZ_PROTOCOLS",
    "FUZZ_WORKLOADS",
    "POOL_CHOICES",
    "PROTOCOLS",
    "SCHEDULER_NAMES",
    "STRATEGY_NAMES",
    "VECTORIZED_ASYNC_SCHEDULERS",
    "VECTORIZED_RESTRICTED_ADVERSARIES",
    "WORKLOAD_NAMES",
    "SESSION_STATES",
    "AdversaryBundle",
    "FallbackReason",
    "Campaign",
    "CampaignSession",
    "CampaignStatus",
    "CampaignSummary",
    "ClaimedEvent",
    "CostModel",
    "ExecutionUnit",
    "FallbackEvent",
    "FinishedEvent",
    "FuzzReport",
    "FuzzViolation",
    "JsonlSink",
    "PlannedEvent",
    "RowEvent",
    "SessionEvent",
    "StoreCacheStats",
    "UnitCommittedEvent",
    "UnitObservation",
    "TrialResult",
    "TrialSpec",
    "WorkerPool",
    "build_mutators",
    "build_registry",
    "build_scheduler",
    "derive_faulty_seeds",
    "execute_plan",
    "execute_specs",
    "get_pool",
    "iter_jsonl",
    "make_adversaries",
    "make_strategy",
    "minimum_processes_for",
    "parameter_grid",
    "plan_specs",
    "pool_metrics",
    "read_jsonl",
    "run_campaign",
    "run_fuzz",
    "run_specs_vectorized",
    "run_trial",
    "sample_specs",
    "shutdown_pools",
    "spec_is_vectorizable",
    "strip_timing",
    "vectorization_fallback",
    "vectorized_group_key",
    "vectorized_stats_snapshot",
]
