"""Unified simulation engine: declarative trials, campaigns, parallel sweeps.

The engine turns "run this protocol once" into "run thousands of (protocol,
workload, adversary, scheduler, seed) configurations fast and reproducibly":

* :class:`~repro.engine.spec.TrialSpec` — one execution as plain data;
* :func:`~repro.engine.trial.run_trial` — spec in, flat
  :class:`~repro.engine.spec.TrialResult` out (a pure function of the spec);
* :class:`~repro.engine.campaign.Campaign` — grid declarations expanded into
  deterministic trial lists with ``SeedSequence.spawn`` seed derivation;
* :func:`~repro.engine.executor.run_campaign` — sequential or worker-pool
  execution streaming into a JSONL sink.

The experiment runners in :mod:`repro.analysis.experiments` and the
``python -m repro.cli campaign`` command are thin layers over this module.
"""

from repro.engine.campaign import Campaign, parameter_grid
from repro.engine.executor import (
    CampaignSummary,
    JsonlSink,
    execute_specs,
    read_jsonl,
    run_campaign,
    strip_timing,
)
from repro.engine.factories import (
    SCHEDULER_NAMES,
    STRATEGY_NAMES,
    WORKLOAD_NAMES,
    build_mutators,
    build_registry,
    build_scheduler,
    make_strategy,
    minimum_processes_for,
)
from repro.engine.spec import PROTOCOLS, TrialResult, TrialSpec
from repro.engine.trial import run_trial

__all__ = [
    "PROTOCOLS",
    "SCHEDULER_NAMES",
    "STRATEGY_NAMES",
    "WORKLOAD_NAMES",
    "Campaign",
    "CampaignSummary",
    "JsonlSink",
    "TrialResult",
    "TrialSpec",
    "build_mutators",
    "build_registry",
    "build_scheduler",
    "execute_specs",
    "make_strategy",
    "minimum_processes_for",
    "parameter_grid",
    "read_jsonl",
    "run_campaign",
    "run_trial",
    "strip_timing",
]
