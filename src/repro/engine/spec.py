"""Declarative trial specifications and results.

A :class:`TrialSpec` fully describes one protocol execution — protocol,
workload generator, adversary strategy, delivery scheduler, the ``(n, d, f)``
configuration, ``epsilon`` and seeds — as plain picklable data, so trials can
be expanded from grids, shipped to worker processes, and replayed exactly.
:class:`TrialResult` is the corresponding flat record: the spec fields plus
the measured outcome (agreement/validity verdicts, round/message/drop
counters, the first honest decision) in a JSON-serialisable shape.

Seed discipline: a spec carries one root ``seed``.  Unless explicitly
overridden, the workload, adversary and scheduler seeds are derived from it
with ``np.random.SeedSequence(seed).spawn(3)``, so (a) the three randomness
consumers are statistically independent and (b) a trial is a pure function of
its spec — the same spec produces the same result on any worker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["PROTOCOLS", "TrialSpec", "TrialResult"]

# Protocol name -> (model, needs_epsilon).  The model decides which runtime
# (and therefore which result counters) a trial uses.
PROTOCOLS: dict[str, tuple[str, bool]] = {
    "exact": ("sync", False),
    "coordinatewise": ("sync", False),
    "approx": ("async", True),
    "restricted_sync": ("sync", True),
    "restricted_async": ("async", True),
}

_PARAM_FIELDS = ("workload_params", "adversary_params", "scheduler_params")


def _freeze_params(params: Mapping[str, Any] | tuple | None) -> tuple[tuple[str, Any], ...]:
    """Normalise a parameter mapping into a sorted, hashable tuple of pairs."""
    if not params:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(key), value) for key, value in items))


@dataclass(frozen=True)
class TrialSpec:
    """One protocol execution, described declaratively.

    Attributes:
        protocol: one of :data:`PROTOCOLS`.
        workload: input-generator name (see :mod:`repro.engine.factories`).
        adversary: strategy name (:data:`~repro.engine.factories.ADVERSARY_NAMES`),
            or ``"none"`` for a fault-free run.  Independent strategies build
            one mutator per faulty id; the coordinated names (``split_world``,
            ``hull_collapse``, ``adaptive_extreme``, ``theorem4_scenario``)
            build one :class:`~repro.byzantine.coordinator.AdversaryCoordinator`
            owning the whole faulty set, with ``adversary_params`` carrying
            its strategy parameters (``target``, ``push_scale``,
            ``crash_round``, ``slow_processes``, …).
        scheduler: delivery-scheduler name (asynchronous protocols only; the
            ``theorem4_scenario`` adversary overrides it with the lagging
            scheduler its lower-bound execution needs).
        process_count / dimension / fault_bound: the (n, d, f) configuration.
        epsilon: agreement parameter for approximate protocols.
        seed: root seed; workload/adversary/scheduler seeds derive from it
            via ``SeedSequence.spawn`` unless overridden below.
        workload_seed / adversary_seed / scheduler_seed: explicit overrides.
        max_rounds_override: cap the protocol's round count (approximate
            protocols; ``None`` runs the static termination rule).
        workload_params / adversary_params / scheduler_params: extra keyword
            arguments for the respective factory, as sorted ``(key, value)``
            pairs so that specs stay hashable and picklable.
        record_history: keep per-round state histories on the result (memory
            heavy; used by convergence experiments).
        trial_index: position of this trial within its campaign.
    """

    protocol: str
    workload: str
    adversary: str = "none"
    scheduler: str = "random"
    process_count: int = 4
    dimension: int = 1
    fault_bound: int = 1
    epsilon: float = 0.2
    seed: int = 0
    workload_seed: int | None = None
    adversary_seed: int | None = None
    scheduler_seed: int | None = None
    max_rounds_override: int | None = None
    workload_params: tuple[tuple[str, Any], ...] = ()
    adversary_params: tuple[tuple[str, Any], ...] = ()
    scheduler_params: tuple[tuple[str, Any], ...] = ()
    record_history: bool = False
    trial_index: int = 0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; known: {', '.join(sorted(PROTOCOLS))}"
            )
        for name in _PARAM_FIELDS:
            object.__setattr__(self, name, _freeze_params(getattr(self, name)))

    # -- derived views ---------------------------------------------------------

    @property
    def model(self) -> str:
        """``"sync"`` or ``"async"``."""
        return PROTOCOLS[self.protocol][0]

    @property
    def is_approximate(self) -> bool:
        """True when the protocol targets epsilon-agreement rather than exact."""
        return PROTOCOLS[self.protocol][1]

    def resolved_seeds(self) -> tuple[int, int, int]:
        """Return ``(workload_seed, adversary_seed, scheduler_seed)``.

        Unset seeds are derived deterministically from the root ``seed`` with
        ``SeedSequence.spawn``, so they are independent streams but a pure
        function of the spec.
        """
        children = np.random.SeedSequence(self.seed).spawn(3)
        derived = [int(child.generate_state(1, dtype=np.uint32)[0]) for child in children]
        explicit = (self.workload_seed, self.adversary_seed, self.scheduler_seed)
        resolved = tuple(
            value if value is not None else fallback
            for value, fallback in zip(explicit, derived)
        )
        return resolved  # type: ignore[return-value]

    def params(self, which: str) -> dict[str, Any]:
        """Return the ``which`` parameter pairs (``"workload"`` etc.) as a dict."""
        return dict(getattr(self, f"{which}_params"))

    # -- (de)serialisation -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable dict (parameter tuples become dicts)."""
        record: dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if spec_field.name in _PARAM_FIELDS:
                value = dict(value)
            record[spec_field.name] = value
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TrialSpec":
        """Rebuild a spec from :meth:`to_dict` output (unknown keys rejected)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(record) - known
        if unknown:
            raise ConfigurationError(f"unknown TrialSpec fields: {sorted(unknown)}")
        return cls(**dict(record))

    def with_index(self, trial_index: int) -> "TrialSpec":
        """Return a copy at a different campaign position."""
        return replace(self, trial_index=trial_index)

    # -- compact wire form (worker-pool transport) -----------------------------

    def to_wire(self) -> tuple:
        """Return the spec as a positional value tuple (field order = ``WIRE_FIELDS``).

        The wire form is what the persistent worker pool ships instead of
        pickled dataclass instances: a batch is one base tuple plus per-trial
        deltas, so field names, class metadata and constant values cross the
        process boundary once per unit rather than once per trial.
        """
        return tuple(getattr(self, name) for name in self.WIRE_FIELDS)

    @classmethod
    def from_wire(cls, values: Sequence[Any]) -> "TrialSpec":
        """Rebuild a spec from :meth:`to_wire` output (exact inverse)."""
        return cls(*values)


# Positional field order of the wire form (also the dataclass __init__ order).
# Assigned after the class body so the dataclass machinery does not mistake it
# for a field.
TrialSpec.WIRE_FIELDS = tuple(spec_field.name for spec_field in fields(TrialSpec))


def _jsonify(value: Any) -> Any:
    """Coerce numpy scalars/arrays into plain Python so rows serialise stably."""
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    return value


@dataclass(frozen=True)
class TrialResult:
    """Flat outcome record of one executed trial.

    Fields that do not apply to a protocol (e.g. ``deliveries`` for a
    synchronous run) are ``None``.  ``state_histories`` is kept in memory for
    reductions but excluded from the serialised row; ``elapsed_ms`` is the
    only non-deterministic field, so determinism comparisons strip it.
    """

    spec: TrialSpec
    status: str  # "ok" | "error"
    error: str | None = None
    agreement: bool | None = None
    validity: bool | None = None
    max_disagreement: float | None = None
    max_hull_distance: float | None = None
    rounds: int | None = None
    deliveries: int | None = None
    messages_sent: int | None = None
    messages_dropped: int | None = None
    decision: tuple[float, ...] | None = None
    state_histories: dict[int, list[np.ndarray]] | None = field(
        default=None, repr=False, compare=False
    )
    elapsed_ms: float = 0.0

    TIMING_FIELDS = ("elapsed_ms",)

    @property
    def ok(self) -> bool:
        """True when the trial executed without raising."""
        return self.status == "ok"

    def to_row(self) -> dict[str, Any]:
        """Flatten spec + outcome into one JSON-serialisable row."""
        row = {f"spec_{key}": _jsonify(value) for key, value in self.spec.to_dict().items()}
        for result_field in fields(self):
            if result_field.name in ("spec", "state_histories"):
                continue
            row[result_field.name] = _jsonify(getattr(self, result_field.name))
        return row

    def to_json(self) -> str:
        """One deterministic JSONL line (keys sorted, timing field included)."""
        return json.dumps(self.to_row(), sort_keys=True)

    @classmethod
    def from_row(cls, row: Mapping[str, Any]) -> "TrialResult":
        """Rebuild a result from :meth:`to_row` / :meth:`to_json` output.

        The exact inverse of the row serialisation (needed by the results
        store): ``from_row(result.to_row()).to_row() == result.to_row()``,
        error rows included.  ``state_histories`` is the one lossy field — it
        is never serialised, so it comes back ``None``.  Unknown keys are
        rejected rather than dropped: a row that does not round-trip is a
        schema mismatch, not data.
        """
        spec_record: dict[str, Any] = {}
        outcome: dict[str, Any] = {}
        known = {
            result_field.name
            for result_field in fields(cls)
            if result_field.name not in ("spec", "state_histories")
        }
        for key, value in row.items():
            if key.startswith("spec_"):
                spec_record[key[len("spec_") :]] = value
            elif key in known:
                outcome[key] = value
            else:
                raise ConfigurationError(f"unknown TrialResult row field {key!r}")
        if "status" not in outcome:
            raise ConfigurationError("TrialResult row is missing the 'status' field")
        try:
            spec = TrialSpec.from_dict(spec_record)
        except TypeError as error:
            raise ConfigurationError(f"malformed spec fields in row: {error}") from error
        if outcome.get("decision") is not None:
            outcome["decision"] = tuple(float(value) for value in outcome["decision"])
        return cls(spec=spec, **outcome)
