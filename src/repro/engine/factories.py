"""Name -> object factories for workloads, adversaries, schedulers, protocols.

The engine's :class:`~repro.engine.spec.TrialSpec` refers to every moving part
of a trial by name so that specs stay plain data.  This module is the single
place those names are resolved: input-workload generators
(:mod:`repro.workloads.generators`), adversary strategies
(:mod:`repro.byzantine.strategies`), delivery schedulers
(:mod:`repro.network.scheduler`) and protocol runners (:mod:`repro.core`).

:func:`make_strategy` predates the engine (it started life in
``analysis/experiments.py``, which still re-exports it) and keeps its exact
behaviour for the original four strategy names.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.byzantine.adversary import MessageMutator
from repro.byzantine.strategies import (
    CoordinateAttackStrategy,
    CrashStrategy,
    EquivocationStrategy,
    HonestStrategy,
    OutsideHullStrategy,
    RandomNoiseStrategy,
)
from repro.core.conditions import (
    minimum_processes_approx_async,
    minimum_processes_exact_sync,
    minimum_processes_restricted_async,
    minimum_processes_restricted_sync,
    minimum_processes_scalar,
)
from repro.engine.spec import TrialSpec
from repro.exceptions import ConfigurationError
from repro.network.scheduler import (
    DeliveryScheduler,
    LaggingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.processes.registry import ProcessRegistry
from repro.workloads.generators import (
    gradient_registry,
    intro_counterexample_registry,
    probability_vector_registry,
    robot_position_registry,
    uniform_box_registry,
)

__all__ = [
    "WORKLOAD_NAMES",
    "STRATEGY_NAMES",
    "SCHEDULER_NAMES",
    "make_strategy",
    "build_registry",
    "build_mutators",
    "build_scheduler",
    "minimum_processes_for",
]

STRATEGY_NAMES = ("crash", "equivocate", "outside_hull", "random_noise")

WORKLOAD_NAMES = (
    "uniform_box",
    "probability_vector",
    "robot_position",
    "gradient",
    "intro_counterexample",
)

SCHEDULER_NAMES = ("random", "lagging", "round_robin")


# -- adversaries ---------------------------------------------------------------

def make_strategy(
    name: str,
    registry: ProcessRegistry,
    seed: int = 0,
    params: dict[str, Any] | None = None,
) -> MessageMutator:
    """Build one of the named adversary strategies against the given registry."""
    params = params or {}
    if name == "none" or name == "honest":
        return HonestStrategy()
    if name == "crash":
        return CrashStrategy(crash_round=int(params.get("crash_round", 1)))
    if name == "equivocate":
        honest_inputs = [registry.input_of(pid) for pid in registry.honest_ids]
        return EquivocationStrategy(value_pool=honest_inputs)
    if name == "outside_hull":
        return OutsideHullStrategy(
            offset=float(params.get("offset", 50.0)), scale=float(params.get("scale", 5.0))
        )
    if name == "random_noise":
        lower, upper = registry.value_bounds()
        spread = max(1.0, upper - lower)
        return RandomNoiseStrategy(low=lower - 5 * spread, high=upper + 5 * spread, seed=seed)
    if name == "coordinate_attack":
        return CoordinateAttackStrategy(
            coordinate=int(params.get("coordinate", 0)), target=float(params.get("target", 0.0))
        )
    raise ValueError(f"unknown strategy name: {name}")


def build_mutators(spec: TrialSpec, registry: ProcessRegistry) -> dict[int, MessageMutator]:
    """One mutator per faulty id, seeded ``adversary_seed + faulty_id``.

    The per-id offset keeps seeded strategies (e.g. random noise) from
    emitting identical streams on every faulty process, and matches the
    seeding the original experiment runners used.
    """
    if spec.adversary in ("none", "honest"):
        return {}
    _, adversary_seed, _ = spec.resolved_seeds()
    params = spec.params("adversary")
    return {
        faulty_id: make_strategy(spec.adversary, registry, seed=adversary_seed + faulty_id, params=params)
        for faulty_id in registry.faulty_ids
    }


# -- workloads ----------------------------------------------------------------

def build_registry(spec: TrialSpec) -> ProcessRegistry:
    """Instantiate the spec's workload into a concrete process registry.

    The registry's configuration must match the spec's ``(n, d, f)`` fields —
    fixed-instance workloads like ``intro_counterexample`` ignore those fields
    when building, so the check keeps result rows from recording a
    configuration that was never executed.
    """
    registry = _build_registry(spec)
    configuration = registry.configuration
    actual = (configuration.process_count, configuration.dimension, configuration.fault_bound)
    declared = (spec.process_count, spec.dimension, spec.fault_bound)
    if actual != declared:
        raise ConfigurationError(
            f"workload {spec.workload!r} builds (n, d, f) = {actual}, "
            f"but the spec declares {declared}"
        )
    return registry


def _build_registry(spec: TrialSpec) -> ProcessRegistry:
    workload_seed, _, _ = spec.resolved_seeds()
    params = spec.params("workload")
    if spec.workload == "uniform_box":
        return uniform_box_registry(
            spec.process_count, spec.dimension, spec.fault_bound, seed=workload_seed, **params
        )
    if spec.workload == "probability_vector":
        return probability_vector_registry(
            spec.process_count, spec.dimension, spec.fault_bound, seed=workload_seed, **params
        )
    if spec.workload == "robot_position":
        return robot_position_registry(
            spec.process_count,
            spec.fault_bound,
            dimension=spec.dimension,
            seed=workload_seed,
            **params,
        )
    if spec.workload == "gradient":
        return gradient_registry(
            spec.process_count, spec.dimension, spec.fault_bound, seed=workload_seed, **params
        )
    if spec.workload == "intro_counterexample":
        return intro_counterexample_registry(**params)
    raise ConfigurationError(
        f"unknown workload {spec.workload!r}; known: {', '.join(WORKLOAD_NAMES)}"
    )


# -- schedulers ---------------------------------------------------------------

def build_scheduler(spec: TrialSpec, registry: ProcessRegistry) -> DeliveryScheduler:
    """Instantiate the spec's delivery scheduler (asynchronous protocols)."""
    _, _, scheduler_seed = spec.resolved_seeds()
    params = spec.params("scheduler")
    if spec.scheduler == "random":
        return RandomScheduler(scheduler_seed)
    if spec.scheduler == "round_robin":
        return RoundRobinScheduler()
    if spec.scheduler == "lagging":
        slow = params.get("slow_processes")
        if slow is None:
            # Default to starving the last honest process — the classical
            # "correct but slow" scenario of the Theorem 4 argument.
            slow = [registry.honest_ids[-1]]
        return LaggingScheduler(slow_processes=list(slow), seed=scheduler_seed)
    raise ConfigurationError(
        f"unknown scheduler {spec.scheduler!r}; known: {', '.join(SCHEDULER_NAMES)}"
    )


# -- resilience bounds --------------------------------------------------------

_MINIMUM_PROCESSES: dict[str, Callable[[int, int], int]] = {
    "exact": minimum_processes_exact_sync,
    "approx": minimum_processes_approx_async,
    "restricted_sync": minimum_processes_restricted_sync,
    "restricted_async": minimum_processes_restricted_async,
    "coordinatewise": lambda dimension, fault_bound: minimum_processes_scalar(fault_bound),
}


def minimum_processes_for(protocol: str, dimension: int, fault_bound: int) -> int:
    """The paper's minimum ``n`` for the protocol at ``(d, f)``."""
    try:
        bound = _MINIMUM_PROCESSES[protocol]
    except KeyError as error:
        raise ConfigurationError(f"unknown protocol {protocol!r}") from error
    return bound(dimension, fault_bound)
