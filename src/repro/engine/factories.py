"""Name -> object factories for workloads, adversaries, schedulers, protocols.

The engine's :class:`~repro.engine.spec.TrialSpec` refers to every moving part
of a trial by name so that specs stay plain data.  This module is the single
place those names are resolved: input-workload generators
(:mod:`repro.workloads.generators`), adversary strategies — independent
mutators (:mod:`repro.byzantine.strategies`) and the coordinated
whole-coalition attacks (:mod:`repro.byzantine.coordinator`), built through
:func:`make_adversaries` — delivery schedulers
(:mod:`repro.network.scheduler`) and protocol runners (:mod:`repro.core`).

:func:`make_strategy` predates the engine (it started life in
``analysis/experiments.py``, which still re-exports it) and keeps its exact
behaviour for the original four strategy names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.byzantine.adversary import MessageMutator
from repro.byzantine.coordinator import (
    COORDINATED_STRATEGY_NAMES,
    AdversaryCoordinator,
)
from repro.byzantine.strategies import (
    CoordinateAttackStrategy,
    CrashStrategy,
    EquivocationStrategy,
    HonestStrategy,
    OutsideHullStrategy,
    RandomNoiseStrategy,
)
from repro.core.conditions import (
    minimum_processes_approx_async,
    minimum_processes_exact_sync,
    minimum_processes_restricted_async,
    minimum_processes_restricted_sync,
    minimum_processes_scalar,
)
from repro.engine.spec import TrialSpec
from repro.exceptions import ConfigurationError
from repro.network.message import Message
from repro.network.scheduler import (
    DeliveryScheduler,
    LaggingScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.processes.registry import ProcessRegistry
from repro.workloads.generators import (
    gradient_registry,
    intro_counterexample_registry,
    probability_vector_registry,
    robot_position_registry,
    uniform_box_registry,
)

__all__ = [
    "WORKLOAD_NAMES",
    "STRATEGY_NAMES",
    "COORDINATED_STRATEGY_NAMES",
    "ADVERSARY_NAMES",
    "SCHEDULER_NAMES",
    "AdversaryBundle",
    "derive_faulty_seeds",
    "make_strategy",
    "make_adversaries",
    "build_registry",
    "build_mutators",
    "build_scheduler",
    "minimum_processes_for",
]

STRATEGY_NAMES = ("crash", "equivocate", "outside_hull", "random_noise")

# Every adversary name a TrialSpec may carry: the independent strategies, the
# intro counterexample attack, and the coordinated (whole-coalition)
# strategies of repro.byzantine.coordinator.
ADVERSARY_NAMES = (
    ("none",) + STRATEGY_NAMES + ("coordinate_attack",) + COORDINATED_STRATEGY_NAMES
)

WORKLOAD_NAMES = (
    "uniform_box",
    "probability_vector",
    "robot_position",
    "gradient",
    "intro_counterexample",
)

SCHEDULER_NAMES = ("random", "lagging", "round_robin")


# -- adversaries ---------------------------------------------------------------

def make_strategy(
    name: str,
    registry: ProcessRegistry,
    seed: int = 0,
    params: dict[str, Any] | None = None,
) -> MessageMutator:
    """Build one of the named adversary strategies against the given registry."""
    params = params or {}
    if name == "none" or name == "honest":
        return HonestStrategy()
    if name == "crash":
        return CrashStrategy(crash_round=int(params.get("crash_round", 1)))
    if name == "equivocate":
        honest_inputs = [registry.input_of(pid) for pid in registry.honest_ids]
        return EquivocationStrategy(value_pool=honest_inputs)
    if name == "outside_hull":
        return OutsideHullStrategy(
            offset=float(params.get("offset", 50.0)), scale=float(params.get("scale", 5.0))
        )
    if name == "random_noise":
        lower, upper = registry.value_bounds()
        spread = max(1.0, upper - lower)
        return RandomNoiseStrategy(low=lower - 5 * spread, high=upper + 5 * spread, seed=seed)
    if name == "coordinate_attack":
        return CoordinateAttackStrategy(
            coordinate=int(params.get("coordinate", 0)),
            target=float(params.get("target", 0.0)),
            dimension=registry.configuration.dimension,
        )
    raise ValueError(f"unknown strategy name: {name}")


@dataclass(frozen=True)
class AdversaryBundle:
    """Everything one trial needs from its adversary.

    ``mutators`` is what the protocol drivers consume (one per faulty id);
    ``coordinator`` is set only for coordinated strategies and carries the
    shared coalition state, the runtime traffic tap and the scheduler hint.
    """

    mutators: dict[int, MessageMutator] = field(default_factory=dict)
    coordinator: AdversaryCoordinator | None = None

    @property
    def traffic_observer(self) -> Callable[[Message], None] | None:
        """The coordinator's observation hook, if this adversary has one."""
        return self.coordinator.observe if self.coordinator is not None else None


def derive_faulty_seeds(adversary_seed: int, faulty_ids: Sequence[int]) -> dict[int, int]:
    """One independent 32-bit seed per faulty id via ``SeedSequence.spawn``.

    The previous scheme (``adversary_seed + faulty_id``) made trials with
    adjacent root seeds share faulty RNG streams: seed ``s`` with faulty id 2
    and seed ``s + 1`` with faulty id 1 both landed on ``s + 2``.  Spawned
    sequences cannot collide that way, and the id-sorted assignment keeps the
    mapping independent of set-iteration order.
    """
    ordered = sorted(int(faulty_id) for faulty_id in faulty_ids)
    children = np.random.SeedSequence(int(adversary_seed)).spawn(max(len(ordered), 1))
    return {
        faulty_id: int(child.generate_state(1, dtype=np.uint32)[0])
        for faulty_id, child in zip(ordered, children)
    }


def make_adversaries(spec: TrialSpec, registry: ProcessRegistry) -> AdversaryBundle:
    """Build the spec's adversary: coordinator-backed or independent mutators.

    Coordinated strategy names (:data:`COORDINATED_STRATEGY_NAMES`) get one
    :class:`~repro.byzantine.coordinator.AdversaryCoordinator` owning the
    whole faulty set, with each faulty id holding a view of it; the classic
    names get one independent mutator per faulty id, seeded via
    :func:`derive_faulty_seeds`.
    """
    if spec.adversary in ("none", "honest") or not registry.faulty_ids:
        return AdversaryBundle()
    _, adversary_seed, _ = spec.resolved_seeds()
    params = spec.params("adversary")
    if spec.adversary in COORDINATED_STRATEGY_NAMES:
        coordinator = AdversaryCoordinator(
            spec.adversary, registry, seed=adversary_seed, params=params
        )
        mutators: dict[int, MessageMutator] = {
            faulty_id: coordinator.mutator_for(faulty_id)
            for faulty_id in sorted(registry.faulty_ids)
        }
        return AdversaryBundle(mutators=mutators, coordinator=coordinator)
    seeds = derive_faulty_seeds(adversary_seed, registry.faulty_ids)
    return AdversaryBundle(
        mutators={
            faulty_id: make_strategy(
                spec.adversary, registry, seed=seeds[faulty_id], params=params
            )
            for faulty_id in sorted(registry.faulty_ids)
        }
    )


def build_mutators(spec: TrialSpec, registry: ProcessRegistry) -> dict[int, MessageMutator]:
    """One mutator per faulty id (compatibility wrapper over :func:`make_adversaries`)."""
    return make_adversaries(spec, registry).mutators


# -- workloads ----------------------------------------------------------------

def build_registry(spec: TrialSpec) -> ProcessRegistry:
    """Instantiate the spec's workload into a concrete process registry.

    The registry's configuration must match the spec's ``(n, d, f)`` fields —
    fixed-instance workloads like ``intro_counterexample`` ignore those fields
    when building, so the check keeps result rows from recording a
    configuration that was never executed.
    """
    registry = _build_registry(spec)
    configuration = registry.configuration
    actual = (configuration.process_count, configuration.dimension, configuration.fault_bound)
    declared = (spec.process_count, spec.dimension, spec.fault_bound)
    if actual != declared:
        raise ConfigurationError(
            f"workload {spec.workload!r} builds (n, d, f) = {actual}, "
            f"but the spec declares {declared}"
        )
    return registry


def _build_registry(spec: TrialSpec) -> ProcessRegistry:
    workload_seed, _, _ = spec.resolved_seeds()
    params = spec.params("workload")
    if spec.workload == "uniform_box":
        return uniform_box_registry(
            spec.process_count, spec.dimension, spec.fault_bound, seed=workload_seed, **params
        )
    if spec.workload == "probability_vector":
        return probability_vector_registry(
            spec.process_count, spec.dimension, spec.fault_bound, seed=workload_seed, **params
        )
    if spec.workload == "robot_position":
        return robot_position_registry(
            spec.process_count,
            spec.fault_bound,
            dimension=spec.dimension,
            seed=workload_seed,
            **params,
        )
    if spec.workload == "gradient":
        return gradient_registry(
            spec.process_count, spec.dimension, spec.fault_bound, seed=workload_seed, **params
        )
    if spec.workload == "intro_counterexample":
        return intro_counterexample_registry(**params)
    raise ConfigurationError(
        f"unknown workload {spec.workload!r}; known: {', '.join(WORKLOAD_NAMES)}"
    )


# -- schedulers ---------------------------------------------------------------

def build_scheduler(spec: TrialSpec, registry: ProcessRegistry) -> DeliveryScheduler:
    """Instantiate the spec's delivery scheduler (asynchronous protocols).

    The ``theorem4_scenario`` adversary couples its crash faults with a
    lagging scheduler starving one correct process — the paper's asynchronous
    lower-bound execution — so for that adversary the spec's scheduler name is
    overridden with a :class:`LaggingScheduler` honouring the coordinator's
    nomination (``slow_processes`` adversary parameter, default: the last
    honest process).
    """
    _, _, scheduler_seed = spec.resolved_seeds()
    params = spec.params("scheduler")
    if spec.adversary == "theorem4_scenario":
        slow = AdversaryCoordinator.nominate_slow_processes(
            registry, spec.params("adversary")
        )
        return LaggingScheduler(slow_processes=list(slow), seed=scheduler_seed)
    if spec.scheduler == "random":
        return RandomScheduler(scheduler_seed)
    if spec.scheduler == "round_robin":
        return RoundRobinScheduler()
    if spec.scheduler == "lagging":
        # Same nomination rule as the theorem4_scenario coupling above: the
        # classical "correct but slow" default is the last honest process.
        slow = AdversaryCoordinator.nominate_slow_processes(registry, params)
        return LaggingScheduler(slow_processes=list(slow), seed=scheduler_seed)
    raise ConfigurationError(
        f"unknown scheduler {spec.scheduler!r}; known: {', '.join(SCHEDULER_NAMES)}"
    )


# -- resilience bounds --------------------------------------------------------

_MINIMUM_PROCESSES: dict[str, Callable[[int, int], int]] = {
    "exact": minimum_processes_exact_sync,
    "approx": minimum_processes_approx_async,
    "restricted_sync": minimum_processes_restricted_sync,
    "restricted_async": minimum_processes_restricted_async,
    "coordinatewise": lambda dimension, fault_bound: minimum_processes_scalar(fault_bound),
}


def minimum_processes_for(protocol: str, dimension: int, fault_bound: int) -> int:
    """The paper's minimum ``n`` for the protocol at ``(d, f)``."""
    try:
        bound = _MINIMUM_PROCESSES[protocol]
    except KeyError as error:
        raise ConfigurationError(f"unknown protocol {protocol!r}") from error
    return bound(dimension, fault_bound)
