"""Campaigns: parameter grids expanded into deterministic trial lists.

A :class:`Campaign` is nothing more than a named, ordered tuple of
:class:`~repro.engine.spec.TrialSpec` objects.  The interesting part is how it
is built:

* :meth:`Campaign.from_grid` expands the cross product of protocols,
  workloads, adversaries, schedulers, ``(n, d, f)`` configurations, epsilons
  and repeats, in a fixed nesting order, and derives one root seed per trial
  with ``np.random.SeedSequence(base_seed).spawn(len(trials))`` — so trial
  seeds are statistically independent, stable under re-expansion, and the
  whole campaign is a pure function of its declaration.
* :meth:`Campaign.from_file` reads either an explicit trial list or a grid
  declaration from JSON, so large sweeps can live in version control.

Axes that a protocol does not consume collapse instead of multiplying: a sync
trial's scheduler is normalised to ``"random"`` (it is never consulted), an
exact trial uses only the first epsilon value, and duplicate specs produced by
those collapses are skipped — keeping grid sizes honest.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.engine.factories import minimum_processes_for
from repro.engine.spec import PROTOCOLS, TrialSpec
from repro.exceptions import ConfigurationError

__all__ = ["Campaign", "parameter_grid"]


def parameter_grid(**axes: Sequence[Any]) -> list[dict[str, Any]]:
    """Expand named axes into their cross product, in declaration order.

    ``parameter_grid(dimension=(1, 2), fault_bound=(1,))`` yields
    ``[{"dimension": 1, "fault_bound": 1}, {"dimension": 2, "fault_bound": 1}]``.
    The last axis varies fastest, matching nested-loop order — analytic
    experiments declare their sweep with this instead of hand-rolled loops.
    """
    points: list[dict[str, Any]] = [{}]
    for name, values in axes.items():
        points = [{**point, name: value} for point in points for value in values]
    return points


def _seed_ints(base_seed: int, count: int) -> list[int]:
    """Derive ``count`` independent 32-bit trial seeds from ``base_seed``."""
    children = np.random.SeedSequence(base_seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint32)[0]) for child in children]


@dataclass(frozen=True)
class Campaign:
    """A named, ordered collection of trial specs."""

    name: str
    specs: tuple[TrialSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_specs(cls, name: str, specs: Sequence[TrialSpec]) -> "Campaign":
        """Wrap explicit specs, re-numbering ``trial_index`` sequentially."""
        indexed = tuple(spec.with_index(index) for index, spec in enumerate(specs))
        return cls(name=name, specs=indexed)

    @classmethod
    def from_grid(
        cls,
        name: str,
        *,
        protocols: Sequence[str] = ("exact",),
        workloads: Sequence[str] = ("uniform_box",),
        adversaries: Sequence[str] = ("none",),
        schedulers: Sequence[str] = ("random",),
        dimensions: Sequence[int] = (2,),
        fault_bounds: Sequence[int] = (1,),
        process_counts: Sequence[int] | None = None,
        epsilons: Sequence[float] = (0.2,),
        repeats: int = 1,
        base_seed: int = 0,
        max_rounds_override: int | None = None,
    ) -> "Campaign":
        """Expand the cross product of every axis into a deterministic trial list.

        When ``process_counts`` is None, each trial uses the paper's minimum
        ``n`` for its protocol at its ``(d, f)`` — the "at the resilience
        bound" setting every theorem is stated at.
        """
        if repeats < 1:
            raise ConfigurationError("repeats must be at least 1")
        unknown = set(protocols) - set(PROTOCOLS)
        if unknown:
            raise ConfigurationError(f"unknown protocols in grid: {sorted(unknown)}")
        specs: list[TrialSpec] = []
        seen: set[TrialSpec] = set()
        for repeat in range(repeats):
            for protocol in protocols:
                is_async = PROTOCOLS[protocol][0] == "async"
                for workload in workloads:
                    for adversary in adversaries:
                        for scheduler in schedulers if is_async else ("random",):
                            for dimension in dimensions:
                                for fault_bound in fault_bounds:
                                    counts = (
                                        process_counts
                                        if process_counts is not None
                                        else (minimum_processes_for(protocol, dimension, fault_bound),)
                                    )
                                    for process_count in counts:
                                        # epsilon only drives approximate
                                        # protocols; collapse the axis for the
                                        # rest so exact trials are not
                                        # duplicated per epsilon value.
                                        trial_epsilons = (
                                            epsilons if PROTOCOLS[protocol][1] else epsilons[:1]
                                        )
                                        for epsilon in trial_epsilons:
                                            spec = TrialSpec(
                                                protocol=protocol,
                                                workload=workload,
                                                adversary=adversary,
                                                scheduler=scheduler,
                                                process_count=process_count,
                                                dimension=dimension,
                                                fault_bound=fault_bound,
                                                epsilon=epsilon,
                                                max_rounds_override=max_rounds_override,
                                                trial_index=repeat,  # disambiguates repeats
                                            )
                                            if spec in seen:
                                                continue
                                            seen.add(spec)
                                            specs.append(spec)
        seeds = _seed_ints(base_seed, len(specs))
        indexed = tuple(
            replace(spec, seed=seed, trial_index=index)
            for index, (spec, seed) in enumerate(zip(specs, seeds))
        )
        return cls(name=name, specs=indexed)

    # Grid keys taking one scalar value; every other from_grid parameter is an
    # axis and must be a JSON array.
    _SCALAR_GRID_KEYS = frozenset({"repeats", "base_seed", "max_rounds_override"})

    @classmethod
    def from_file(cls, path: str | Path) -> "Campaign":
        """Load a campaign from JSON: ``{"grid": {...}}`` or ``{"trials": [...]}``.

        Malformed declarations raise :class:`ConfigurationError` naming the
        offending key (or trial entry) — a grid file is user input, so a bare
        ``TypeError`` escaping from the dataclass constructor is a bug here,
        not an acceptable answer.
        """
        path = Path(path)
        declaration = json.loads(path.read_text())
        if not isinstance(declaration, Mapping):
            raise ConfigurationError(f"{path}: campaign file must be a JSON object")
        return cls.from_payload(declaration, source=str(path), default_name=path.stem)

    @classmethod
    def from_payload(
        cls,
        declaration: Mapping[str, Any],
        source: str = "campaign",
        default_name: str = "campaign",
    ) -> "Campaign":
        """Build a campaign from a parsed JSON declaration.

        The declaration shape is the campaign-file schema (``{"grid": {...}}``
        or ``{"trials": [...]}`` plus an optional ``"name"``); the HTTP
        server's campaign-submission body goes through here too, so files and
        API requests validate identically.  ``source`` labels error messages
        (a path, or e.g. ``"request body"``).
        """
        if not isinstance(declaration, Mapping):
            raise ConfigurationError(f"{source}: campaign declaration must be a JSON object")
        name = str(declaration.get("name", default_name))
        if "trials" in declaration:
            records = declaration["trials"]
            if isinstance(records, (str, bytes)) or not isinstance(records, Sequence):
                raise ConfigurationError(f"{source}: 'trials' must be a list of trial objects")
            specs: list[TrialSpec] = []
            for index, record in enumerate(records):
                if not isinstance(record, Mapping):
                    raise ConfigurationError(
                        f"{source}: trials[{index}] must be a JSON object, got {type(record).__name__}"
                    )
                try:
                    specs.append(TrialSpec.from_dict(record))
                except ConfigurationError as error:
                    raise ConfigurationError(f"{source}: trials[{index}]: {error}") from error
                except (TypeError, ValueError) as error:
                    # e.g. a parameter mapping spelled as a scalar — surface
                    # the entry and the field-level complaint, not a traceback.
                    raise ConfigurationError(
                        f"{source}: trials[{index}]: malformed trial entry: {error}"
                    ) from error
            return cls.from_specs(name, specs)
        if "grid" in declaration:
            if not isinstance(declaration["grid"], Mapping):
                raise ConfigurationError(f"{source}: 'grid' must be a JSON object")
            grid: dict[str, Any] = dict(declaration["grid"])
            axes = set(inspect.signature(cls.from_grid).parameters) - {"name"}
            unknown = set(grid) - axes
            if unknown:
                raise ConfigurationError(
                    f"{source}: unknown grid axes {sorted(unknown)}; known: {sorted(axes)}"
                )
            for key, value in grid.items():
                if key in cls._SCALAR_GRID_KEYS:
                    valid = value is None if key == "max_rounds_override" else False
                    if not valid and (isinstance(value, bool) or not isinstance(value, int)):
                        raise ConfigurationError(
                            f"{source}: grid key {key!r} must be an integer, got {value!r}"
                        )
                elif value is None and key == "process_counts":
                    pass  # explicit null = from_grid's own "paper minimum n" default
                elif isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
                    raise ConfigurationError(
                        f"{source}: grid axis {key!r} must be a list of values, got {value!r}"
                    )
            try:
                return cls.from_grid(name, **grid)
            except ConfigurationError:
                raise
            except (TypeError, ValueError) as error:
                raise ConfigurationError(
                    f"{source}: malformed grid declaration: {error}"
                ) from error
        raise ConfigurationError(f"{source}: campaign declaration needs a 'grid' or 'trials' key")

    # -- views -----------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Summarise the campaign's axes (for logs and CLI output)."""
        return {
            "name": self.name,
            "trials": len(self.specs),
            "protocols": sorted({spec.protocol for spec in self.specs}),
            "workloads": sorted({spec.workload for spec in self.specs}),
            "adversaries": sorted({spec.adversary for spec in self.specs}),
            "schedulers": sorted({spec.scheduler for spec in self.specs}),
        }
