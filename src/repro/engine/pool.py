"""Persistent shared-memory worker pool for campaign execution.

The one-shot ``ProcessPoolExecutor`` the executor used to spawn per campaign
made parallelism a pessimization: every ``execute_specs`` call paid worker
start-up, every unit re-pickled its ``TrialSpec`` objects, and every worker
re-derived the :class:`~repro.geometry.kernel.GammaKernel` template cache
from scratch.  This module replaces that with a process-lifetime pool:

* **Persistent workers** — spawned once per ``(workers)`` size via
  :func:`get_pool` and reused across ``execute_specs`` calls and campaign
  phases, so kernel template caches, safe-area choosers and Gamma memos
  (module-level in :mod:`repro.engine.vectorized`) stay warm from one unit
  to the next.
* **Demand-driven dispatch** — the pool pulls sized work units from a lazy
  task iterator the moment a worker goes idle (a logical shared queue:
  fast workers steal the remaining tail instead of waiting on ``pool.map``
  submission order), and yields completed units in *completion* order (the
  executor's reorder buffer restores spec order).
* **Shared-memory transport** — a unit crosses the process boundary as one
  base spec wire tuple plus delta *columns* (int64/float64 arrays in a
  ``multiprocessing.shared_memory`` block for large units) instead of a
  pickled ``TrialSpec`` per trial; workers return results with the spec
  stripped and the parent reattaches its originals, so specs never make the
  round trip.
* **Measured cost model** — :class:`CostModel` sizes units from observed
  per-trial seconds (seeded by a tiny calibration probe, refined online via
  EWMA), replacing the two duplicated ``len(specs) // (workers * 4)``
  heuristics.  An explicit ``chunksize`` always wins.
* **Crash recovery** — each worker owns a private duplex pipe; a killed
  worker surfaces as EOF on its pipe, its in-flight unit is requeued and a
  replacement worker is spawned (trials are pure functions of their specs,
  so re-execution is safe and byte-identical).

``pool="spawn"`` keeps the legacy one-shot ``ProcessPoolExecutor`` path as
an escape hatch (same cost-model unit sizing, pickled-spec transport).
"""

from __future__ import annotations

import atexit
import itertools
import math
import multiprocessing
import time
import traceback
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from multiprocessing.connection import Connection, wait as connection_wait
from multiprocessing.shared_memory import SharedMemory
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.engine.spec import TrialResult, TrialSpec
from repro.engine.trial import run_trials
from repro.engine.vectorized import run_specs_vectorized
from repro.exceptions import ConfigurationError
from repro.obs.registry import get_registry, snapshot_delta

__all__ = [
    "POOL_CHOICES",
    "ExecutionUnit",
    "UnitObservation",
    "CostModel",
    "WorkerPool",
    "encode_unit",
    "decode_unit",
    "execute_plan",
    "get_pool",
    "pool_metrics",
    "shutdown_pools",
]

#: Dispatch substrates for multi-worker execution: ``"persistent"`` is the
#: long-lived shared-memory pool, ``"spawn"`` the legacy per-call
#: ``ProcessPoolExecutor`` escape hatch.
POOL_CHOICES = ("persistent", "spawn")


@dataclass(frozen=True)
class UnitObservation:
    """Telemetry for one completed pool unit (the ``on_unit`` callback payload).

    ``seconds`` is worker-measured execution time; ``started_at`` the unit's
    epoch start on the worker (0.0 when unknown); ``worker`` the executing
    worker process name — together enough to place the unit on a shared
    trace timeline.
    """

    kind: str
    trials: int
    seconds: float
    started_at: float
    worker: str


@dataclass(frozen=True)
class ExecutionUnit:
    """One schedulable slice of a campaign plan.

    ``kind`` is ``"columnar"`` (a same-shape group for the vectorized engine)
    or ``"object"`` (a chunk of per-trial ``run_trial`` calls); ``positions``
    are the indices of the unit's specs within the planned spec list.
    """

    kind: str
    positions: tuple[int, ...]


# --------------------------------------------------------------------------
# Cost model
# --------------------------------------------------------------------------

#: A dispatched unit targets roughly this much worker wall time: long enough
#: to amortise the pipe round trip, short enough that the tail of a campaign
#: still balances across workers.
TARGET_UNIT_SECONDS = 0.25

#: First unit dispatched for an unseen shape class — deliberately tiny so the
#: model calibrates from real observed latency within one round trip.
PROBE_TRIALS = 2

#: Hard ceiling on trials per dispatched unit (bounds transport block size).
MAX_UNIT_TRIALS = 4096

_EWMA_ALPHA = 0.5


class CostModel:
    """Observed per-trial latency by shape class, used to size work units.

    Latencies are keyed by ``(kind, protocol, n, d, f, adversary)`` — the
    dimensions that dominate trial cost — with a per-``kind`` default for
    shapes not yet observed.  Estimates blend via EWMA so the model tracks
    warm-up effects (cold kernel caches make early units slow) without
    forgetting the steady state.
    """

    def __init__(self) -> None:
        self._per_trial: dict[tuple, float] = {}
        self._kind_default: dict[str, float] = {}
        #: Calibration probes dispatched for never-seen shape classes.
        self.probes = 0

    def observed_shapes(self) -> int:
        """Number of distinct shape classes with a direct latency estimate."""
        return len(self._per_trial)

    @staticmethod
    def shape_key(kind: str, spec: TrialSpec) -> tuple:
        return (
            kind,
            spec.protocol,
            spec.process_count,
            spec.dimension,
            spec.fault_bound,
            spec.adversary,
        )

    def observe(self, key: tuple, trials: int, seconds: float) -> None:
        """Fold one completed unit's measured wall time into the model."""
        if trials <= 0 or seconds <= 0:
            return
        per = seconds / trials
        for table, slot in ((self._per_trial, key), (self._kind_default, key[0])):
            old = table.get(slot)
            table[slot] = per if old is None else (1 - _EWMA_ALPHA) * old + _EWMA_ALPHA * per

    def per_trial_seconds(self, key: tuple) -> float | None:
        """Best latency estimate for the shape class (``None`` = never seen)."""
        return self._per_trial.get(key, self._kind_default.get(key[0]))

    def unit_trials(
        self,
        key: tuple,
        remaining: int,
        workers: int,
        chunksize: int | None = None,
        probe: bool = True,
    ) -> int:
        """Number of trials the next dispatched unit should carry.

        An explicit ``chunksize`` always wins (capped only by ``remaining``).
        Otherwise the size targets :data:`TARGET_UNIT_SECONDS` of estimated
        work, capped at an even ``remaining / workers`` split so the last
        units never leave workers idle.  An unseen shape gets a
        :data:`PROBE_TRIALS` calibration unit when ``probe`` is true (the
        persistent pool, which observes results online) or the classic
        ``remaining // (workers * 4)`` prior when it is not (the one-shot
        spawn path, which sizes its whole plan up front).
        """
        if remaining <= 0:
            return 0
        if chunksize is not None:
            return max(1, min(chunksize, remaining))
        per = self.per_trial_seconds(key)
        if per is None:
            if probe:
                self.probes += 1
            size = PROBE_TRIALS if probe else max(1, remaining // (max(1, workers) * 4))
        else:
            size = max(1, round(TARGET_UNIT_SECONDS / per))
        size = min(size, max(1, math.ceil(remaining / max(1, workers))), MAX_UNIT_TRIALS)
        return max(1, min(size, remaining))


# --------------------------------------------------------------------------
# Shared-memory unit transport
# --------------------------------------------------------------------------

#: int64 column value standing in for ``None`` (far outside any seed/index).
_NONE_I64 = -(1 << 62)

#: Units below this many trials ship their delta columns inline over the pipe
#: (a shared-memory segment costs two syscalls plus tracker traffic — not
#: worth it for a handful of trials).
_SHM_MIN_TRIALS = 16

_WIRE_INDEX = {name: index for index, name in enumerate(TrialSpec.WIRE_FIELDS)}


def _is_plain_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def encode_unit(kind: str, specs: Sequence[TrialSpec]) -> tuple[dict[str, Any], SharedMemory | None]:
    """Encode a unit's specs as one base wire tuple plus delta columns.

    Fields constant across the unit travel once (in ``base``).  Varying
    int-or-``None`` fields become int64 columns and varying float fields
    float64 columns — packed into one buffer that ships via shared memory for
    large units (``shm`` names the segment; the **caller owns it** and must
    close+unlink once the unit completes) or inline bytes for small ones.
    Anything else (tuples of parameter pairs, strings) falls back to a
    per-trial value list in ``others``.
    """
    wires = [spec.to_wire() for spec in specs]
    base = wires[0]
    int_fields: list[str] = []
    float_fields: list[str] = []
    others: dict[str, list[Any]] = {}
    int_columns: list[np.ndarray] = []
    float_columns: list[np.ndarray] = []
    for name, index in _WIRE_INDEX.items():
        values = [wire[index] for wire in wires]
        if all(value == base[index] for value in values[1:]):
            continue
        if all(value is None or _is_plain_int(value) for value in values):
            int_fields.append(name)
            int_columns.append(
                np.array(
                    [_NONE_I64 if value is None else value for value in values],
                    dtype=np.int64,
                )
            )
        elif all(isinstance(value, float) for value in values):
            float_fields.append(name)
            float_columns.append(np.array(values, dtype=np.float64))
        else:
            others[name] = values
    # Payload layout must match decode_unit: every int64 column first, then
    # every float64 column, each in field-list order.
    payload = b"".join(column.tobytes() for column in (*int_columns, *float_columns))
    header: dict[str, Any] = {
        "kind": kind,
        "trials": len(specs),
        "base": base,
        "int_fields": int_fields,
        "float_fields": float_fields,
        "others": others,
        "shm": None,
        "inline": None,
    }
    shm: SharedMemory | None = None
    if payload and len(specs) >= _SHM_MIN_TRIALS:
        shm = SharedMemory(create=True, size=len(payload))
        shm.buf[: len(payload)] = payload
        header["shm"] = shm.name
    else:
        header["inline"] = payload
    return header, shm


def _release_shm(shm: SharedMemory | None) -> None:
    if shm is None:
        return
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # already gone (worker crash cleanup)
        pass


def decode_unit(header: dict[str, Any]) -> list[TrialSpec]:
    """Rebuild a unit's spec list from :func:`encode_unit` output (worker side)."""
    trials = header["trials"]
    int_fields = header["int_fields"]
    float_fields = header["float_fields"]
    if header["shm"] is not None:
        # Workers share the parent's resource tracker (they are its
        # children), so the attach-time registration is a set no-op and the
        # parent's unlink is the single deregistration — no extra tracker
        # bookkeeping needed here.
        shm = SharedMemory(name=header["shm"])
        try:
            payload = bytes(shm.buf)
        finally:
            shm.close()
    else:
        payload = header["inline"] or b""
    offset = 0
    column_values: dict[str, np.ndarray] = {}
    for name in int_fields:
        column_values[name] = np.frombuffer(payload, dtype=np.int64, count=trials, offset=offset)
        offset += trials * 8
    for name in float_fields:
        column_values[name] = np.frombuffer(payload, dtype=np.float64, count=trials, offset=offset)
        offset += trials * 8
    specs: list[TrialSpec] = []
    for position in range(trials):
        values = list(header["base"])
        for name in int_fields:
            raw = int(column_values[name][position])
            values[_WIRE_INDEX[name]] = None if raw == _NONE_I64 else raw
        for name in float_fields:
            values[_WIRE_INDEX[name]] = float(column_values[name][position])
        for name, per_trial in header["others"].items():
            values[_WIRE_INDEX[name]] = per_trial[position]
        specs.append(TrialSpec.from_wire(values))
    return specs


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def _run_unit(kind: str, specs: Sequence[TrialSpec]) -> list[TrialResult]:
    if kind == "columnar":
        return run_specs_vectorized(list(specs))
    return run_trials(specs)


def _worker_main(conn: Connection, sibling_conns: Sequence[Connection]) -> None:
    """Worker loop: decode units, execute, reply ``(status, seconds, rows, extras)``.

    Results travel back with ``spec=None`` (the parent holds the originals
    and reattaches them), so specs only ever cross the boundary once — in
    column form, on the way out.  ``extras`` carries side-band telemetry: the
    worker registry's counter/histogram delta since its previous reply (the
    parent merges it, so ``/metrics`` totals span every process) and the
    unit's wall-clock start for trace timelines.  SIGINT is ignored: campaign
    interruption is the parent's decision, and a worker dying mid-unit would
    discard a warm kernel cache for nothing.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    for sibling in sibling_conns:
        try:
            sibling.close()
        except OSError:  # pragma: no cover — best-effort fd hygiene
            pass
    registry = get_registry()
    baseline = registry.snapshot()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent is gone
            return
        if message[0] == "stop":
            conn.close()
            return
        header = message[1]
        started_at = time.time()
        start = time.perf_counter()
        try:
            results = _run_unit(header["kind"], decode_unit(header))
            stripped = [replace(result, spec=None) for result in results]
            current = registry.snapshot()
            delta = snapshot_delta(current, baseline)
            baseline = current
            extras = {"metrics": delta or None, "started_at": started_at}
            reply = ("done", time.perf_counter() - start, stripped, extras)
        except BaseException as error:  # noqa: BLE001 — report, keep serving
            detail = f"{type(error).__name__}: {error}\n{traceback.format_exc()}"
            reply = ("fail", 0.0, detail, {})
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # parent is gone
            return


# --------------------------------------------------------------------------
# Parent side
# --------------------------------------------------------------------------


@dataclass
class _Task:
    """One dispatched unit: positions + encoded transport + parent-side shm."""

    task_id: int
    kind: str
    positions: tuple[int, ...]
    shape_key: tuple
    header: dict[str, Any]
    shm: SharedMemory | None
    # Telemetry filled in by the pool: dispatch time (parent perf_counter),
    # unit start (worker epoch seconds) and the executing worker's name.
    dispatched_at: float = 0.0
    started_at: float = 0.0
    worker: str = ""


@dataclass
class _Slot:
    """One worker seat: the live process, its pipe, and its in-flight task."""

    process: multiprocessing.process.BaseProcess
    conn: Connection
    task: _Task | None = None


class WorkerPool:
    """Long-lived pool of trial workers with demand-driven unit dispatch.

    Workers are plain ``multiprocessing`` processes (fork where available)
    each owning a private duplex pipe.  :meth:`run_tasks` drives a lazy task
    iterator: a unit is cut and dispatched only when a worker goes idle, so
    unit sizing sees the freshest :class:`CostModel` estimates and fast
    workers drain the shared tail (work stealing by construction).  A worker
    that dies mid-unit (OOM-kill, segfault) is detected as pipe EOF; its unit
    is requeued and the seat respawned — ``crash_recoveries`` counts these.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"worker pool needs >= 1 worker, got {workers}")
        self.workers = workers
        self.cost_model = CostModel()
        self.crash_recoveries = 0
        self.closed = False
        start_methods = multiprocessing.get_all_start_methods()
        self._context = multiprocessing.get_context(
            "fork" if "fork" in start_methods else start_methods[0]
        )
        self._slots: list[_Slot] = []
        for _ in range(workers):
            self._slots.append(self._spawn_slot())

    def _spawn_slot(self) -> _Slot:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        siblings = [slot.conn for slot in self._slots]
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, siblings),
            daemon=True,
            name=f"repro-pool-{len(self._slots)}",
        )
        process.start()
        child_conn.close()  # the worker holds the only live copy now
        return _Slot(process=process, conn=parent_conn)

    def worker_pids(self) -> list[int]:
        """PIDs of the current worker seats (crash tests kill one of these)."""
        return [slot.process.pid for slot in self._slots if slot.process.pid is not None]

    def _respawn(self, slot: _Slot) -> None:
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover
            pass
        if slot.process.is_alive():  # pragma: no cover — EOF usually means dead
            slot.process.terminate()
        slot.process.join(timeout=5.0)
        fresh = self._spawn_slot()
        slot.process = fresh.process
        slot.conn = fresh.conn
        slot.task = None

    def _dispatch(self, slot: _Slot, task: _Task) -> None:
        """Send a unit to a seat, respawning once if the worker died idle."""
        for _attempt in (0, 1):
            try:
                slot.conn.send(("unit", task.header))
                task.dispatched_at = time.perf_counter()
                slot.task = task
                return
            except (BrokenPipeError, OSError):
                self.crash_recoveries += 1
                self._respawn(slot)
        raise RuntimeError("worker pool could not dispatch after respawn")

    def run_tasks(
        self, tasks: Iterable[_Task]
    ) -> Iterator[tuple[_Task, float, list[TrialResult]]]:
        """Yield ``(task, seconds, stripped_results)`` in completion order.

        ``tasks`` is consumed lazily — the next task is pulled only when a
        seat frees up.  On early close (campaign interrupted downstream) the
        in-flight units are drained and discarded so the pool is immediately
        reusable; their rows are simply dropped (trials are pure, re-running
        them later is byte-identical).
        """
        if self.closed:
            raise RuntimeError("worker pool is shut down")
        task_iter = iter(tasks)
        backlog: deque[_Task] = deque()
        exhausted = False

        def pull() -> _Task | None:
            nonlocal exhausted
            if backlog:
                task = backlog.popleft()
                _POOL_BACKLOG.set(len(backlog))
                return task
            if exhausted:
                return None
            try:
                return next(task_iter)
            except StopIteration:
                exhausted = True
                return None

        def fill_idle() -> None:
            for slot in self._slots:
                if slot.task is None:
                    task = pull()
                    if task is None:
                        return
                    self._dispatch(slot, task)

        try:
            fill_idle()
            while any(slot.task is not None for slot in self._slots):
                busy = {slot.conn: slot for slot in self._slots if slot.task is not None}
                for conn in connection_wait(list(busy)):
                    slot = busy[conn]
                    task = slot.task
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-unit: requeue the unit, refill seat.
                        self.crash_recoveries += 1
                        self._respawn(slot)
                        backlog.append(task)
                        _POOL_BACKLOG.set(len(backlog))
                        continue
                    slot.task = None
                    _release_shm(task.shm)
                    task.shm = None
                    status, seconds, body = message[0], message[1], message[2]
                    extras = message[3] if len(message) > 3 else {}
                    if status == "fail":
                        raise RuntimeError(f"worker failed executing unit:\n{body}")
                    delta = extras.get("metrics")
                    if delta:
                        get_registry().merge(delta)
                    task.started_at = float(extras.get("started_at") or 0.0)
                    task.worker = slot.process.name
                    self.cost_model.observe(task.shape_key, len(task.positions), seconds)
                    self._observe_unit(task, seconds)
                    yield task, seconds, body
                fill_idle()
        finally:
            self._drain_inflight()
            for task in backlog:
                _release_shm(task.shm)

    def _observe_unit(self, task: _Task, seconds: float) -> None:
        """Fold one completed unit into the process metrics registry."""
        registry = get_registry()
        if not registry.enabled:
            return
        _POOL_UNITS.labels(kind=task.kind).inc()
        _POOL_TRIALS.labels(kind=task.kind).inc(len(task.positions))
        _POOL_UNIT_SECONDS.labels(kind=task.kind).observe(seconds)
        if task.dispatched_at:
            _POOL_ROUNDTRIP_SECONDS.observe(time.perf_counter() - task.dispatched_at)

    def _drain_inflight(self) -> None:
        """Absorb (and discard) any still-running units so seats are clean."""
        for slot in self._slots:
            if slot.task is None:
                continue
            try:
                slot.conn.recv()
            except (EOFError, OSError):
                self._respawn(slot)
            _release_shm(slot.task.shm)
            slot.task = None

    def shutdown(self) -> None:
        """Stop every worker (idempotent); the pool cannot be reused after."""
        if self.closed:
            return
        self.closed = True
        for slot in self._slots:
            try:
                slot.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for slot in self._slots:
            slot.process.join(timeout=5.0)
            if slot.process.is_alive():  # pragma: no cover — stuck worker
                slot.process.terminate()
                slot.process.join(timeout=5.0)
            try:
                slot.conn.close()
            except OSError:  # pragma: no cover
                pass


#: Live pools by worker count.  ``execute_plan`` reuses these across calls —
#: that reuse (not the pipes or the shared memory) is where the speedup
#: lives: warm kernel template caches, warm Gamma memos, calibrated cost
#: model, zero spawn latency.
_POOLS: dict[int, WorkerPool] = {}


# -- telemetry ---------------------------------------------------------------

#: Unit wall-time buckets (seconds): units target ~0.25 s, probes are tiny.
_UNIT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_POOL_UNITS = get_registry().counter(
    "repro_pool_units_total", "Work units completed by the persistent pool, by kind.",
    labelnames=("kind",),
)
_POOL_TRIALS = get_registry().counter(
    "repro_pool_trials_total", "Trials completed by the persistent pool, by unit kind.",
    labelnames=("kind",),
)
_POOL_UNIT_SECONDS = get_registry().histogram(
    "repro_pool_unit_seconds", "Worker-measured unit execution time (seconds).",
    labelnames=("kind",), buckets=_UNIT_BUCKETS,
)
_POOL_ROUNDTRIP_SECONDS = get_registry().histogram(
    "repro_pool_unit_roundtrip_seconds",
    "Parent-measured dispatch-to-completion latency per unit (seconds).",
    buckets=_UNIT_BUCKETS,
)
_POOL_BACKLOG = get_registry().gauge(
    "repro_pool_backlog_units", "Units requeued after a worker crash, awaiting redispatch.",
)


def pool_metrics() -> dict[str, Any]:
    """Aggregate state of every live pool, for ``/metrics`` JSON exposition.

    Totals cover ``crash_recoveries``, seat counts and occupancy, and the
    cost model's calibration-probe/shape counters; ``pools`` breaks the same
    numbers down per pool size.
    """
    pools: list[dict[str, Any]] = []
    for workers, pool in sorted(_POOLS.items()):
        if pool.closed:
            continue
        busy = sum(1 for slot in pool._slots if slot.task is not None)
        pools.append({
            "workers": workers,
            "busy_seats": busy,
            "crash_recoveries": pool.crash_recoveries,
            "cost_model_probes": pool.cost_model.probes,
            "cost_model_shapes": pool.cost_model.observed_shapes(),
        })
    return {
        "pools": pools,
        "seats": sum(entry["workers"] for entry in pools),
        "busy_seats": sum(entry["busy_seats"] for entry in pools),
        "crash_recoveries": sum(entry["crash_recoveries"] for entry in pools),
        "cost_model_probes": sum(entry["cost_model_probes"] for entry in pools),
    }


def _register_pool_metrics() -> None:
    """Publish live-pool gauges and crash/probe counters at collection time."""
    from repro.obs.registry import CounterSync

    registry = get_registry()
    seats = registry.gauge(
        "repro_pool_seats", "Worker seats across every live persistent pool.",
    )
    busy = registry.gauge(
        "repro_pool_busy_seats", "Seats currently executing a unit.",
    )
    crashes = registry.counter(
        "repro_pool_crash_recoveries_total",
        "Workers respawned after dying (their unit was requeued).",
    )
    probes = registry.counter(
        "repro_pool_cost_model_probes_total",
        "Calibration probe units dispatched for never-seen shape classes.",
    )

    def _gauges() -> None:
        state = pool_metrics()
        seats.set(state["seats"])
        busy.set(state["busy_seats"])

    registry.register_collector(_gauges)
    registry.register_collector(
        CounterSync(crashes, lambda: {"value": pool_metrics()["crash_recoveries"]})
    )
    registry.register_collector(
        CounterSync(probes, lambda: {"value": pool_metrics()["cost_model_probes"]})
    )


_register_pool_metrics()


def get_pool(workers: int) -> WorkerPool:
    """Return the process-lifetime pool for ``workers`` seats, creating it once."""
    pool = _POOLS.get(workers)
    if pool is None or pool.closed:
        pool = _POOLS[workers] = WorkerPool(workers)
    return pool


def shutdown_pools() -> None:
    """Shut down every live pool (registered atexit; safe to call any time)."""
    for pool in _POOLS.values():
        pool.shutdown()
    _POOLS.clear()


atexit.register(shutdown_pools)


# --------------------------------------------------------------------------
# Plan execution
# --------------------------------------------------------------------------

_task_ids = itertools.count()


def _cut_tasks(
    specs: Sequence[TrialSpec],
    units: Sequence[ExecutionUnit],
    cost_model: CostModel,
    workers: int,
    chunksize: int | None,
    probe: bool = True,
) -> Iterator[_Task]:
    """Lazily slice plan units into cost-model-sized dispatchable tasks.

    Both unit kinds are cut: object chunks for balance, columnar groups so a
    single same-shape group (the common campaign shape) still fans out across
    every worker.  Columnar sub-groups execute identically to the whole group
    — every trial is a pure function of its spec, and the vectorized engine's
    memoisation only ever reuses deterministic answers — so the partition is
    invisible in the rows.
    """
    for unit in units:
        positions = unit.positions
        start = 0
        while start < len(positions):
            remaining = len(positions) - start
            key = CostModel.shape_key(unit.kind, specs[positions[start]])
            size = cost_model.unit_trials(key, remaining, workers, chunksize, probe)
            chunk = positions[start : start + size]
            header, shm = encode_unit(unit.kind, [specs[position] for position in chunk])
            yield _Task(
                task_id=next(_task_ids),
                kind=unit.kind,
                positions=chunk,
                shape_key=key,
                header=header,
                shm=shm,
            )
            start += size


def _execute_plan_spawn(
    specs: Sequence[TrialSpec],
    units: Sequence[ExecutionUnit],
    workers: int,
    chunksize: int | None,
) -> Iterator[tuple[tuple[int, ...], list[TrialResult]]]:
    """Legacy escape hatch: one-shot ``ProcessPoolExecutor``, pickled specs."""
    model = CostModel()
    tasks: list[tuple[tuple[int, ...], str, tuple[TrialSpec, ...]]] = []
    for unit in units:
        positions = unit.positions
        start = 0
        while start < len(positions):
            remaining = len(positions) - start
            key = CostModel.shape_key(unit.kind, specs[positions[start]])
            size = model.unit_trials(key, remaining, workers, chunksize, probe=False)
            chunk = positions[start : start + size]
            tasks.append((chunk, unit.kind, tuple(specs[position] for position in chunk)))
            start += size
    with ProcessPoolExecutor(max_workers=workers) as executor:
        # map() is consumed lazily: results stream in submission order while
        # workers run ahead.
        payloads = [(kind, unit_specs) for _, kind, unit_specs in tasks]
        for (positions, _, _), results in zip(
            tasks, executor.map(_execute_spawn_task, payloads)
        ):
            yield positions, results


def _execute_spawn_task(payload: tuple[str, tuple[TrialSpec, ...]]) -> list[TrialResult]:
    """Spawn-pool entry point (module level so it pickles by name)."""
    kind, unit_specs = payload
    return _run_unit(kind, unit_specs)


def execute_plan(
    specs: Sequence[TrialSpec],
    units: Sequence[ExecutionUnit],
    workers: int,
    chunksize: int | None = None,
    pool: str = "persistent",
    on_unit: "Callable[[UnitObservation], None] | None" = None,
) -> Iterator[tuple[tuple[int, ...], list[TrialResult]]]:
    """Execute a campaign plan across workers, yielding units as they finish.

    Yields ``(positions, results)`` pairs in **completion** order — the
    executor's reorder buffer restores spec order.  ``pool`` selects the
    dispatch substrate (:data:`POOL_CHOICES`); rows are byte-identical
    (modulo ``elapsed_ms``) across pools, worker counts and unit cuts.
    ``on_unit`` (persistent pool only) receives one :class:`UnitObservation`
    per completed unit — the hook session trace recorders attach to.
    """
    if pool not in POOL_CHOICES:
        raise ConfigurationError(
            f"unknown pool {pool!r}; known: {', '.join(POOL_CHOICES)}"
        )
    if not units:
        return
    if pool == "spawn":
        yield from _execute_plan_spawn(specs, units, workers, chunksize)
        return
    worker_pool = get_pool(workers)
    tasks = _cut_tasks(specs, units, worker_pool.cost_model, workers, chunksize)
    for task, seconds, stripped in worker_pool.run_tasks(tasks):
        if on_unit is not None:
            on_unit(UnitObservation(
                kind=task.kind,
                trials=len(task.positions),
                seconds=seconds,
                started_at=task.started_at,
                worker=task.worker,
            ))
        results = [
            replace(result, spec=specs[position])
            for result, position in zip(stripped, task.positions)
        ]
        yield task.positions, results
