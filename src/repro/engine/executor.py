"""Campaign execution: sequential or worker-pool, streaming into a JSONL sink.

The executor maps :func:`~repro.engine.trial.run_trial` over a campaign's
specs.  With ``workers > 1`` it uses a ``concurrent.futures``
``ProcessPoolExecutor`` (trials are CPU-bound: each one is a full protocol
simulation plus LP solves) and consumes results with ``Executor.map``, which
yields in submission order — so rows stream to the sink in trial order while
workers run ahead, large sweeps never accumulate in memory, and the output is
byte-identical for any worker count (every trial is a pure function of its
spec; only the ``elapsed_ms`` timing field varies run to run).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.engine.campaign import Campaign
from repro.engine.spec import TrialResult, TrialSpec
from repro.engine.trial import run_trial

__all__ = [
    "CampaignSummary",
    "JsonlSink",
    "execute_specs",
    "run_campaign",
    "read_jsonl",
    "strip_timing",
]


class JsonlSink:
    """Append trial rows to a JSON-lines file, one row per trial, as they arrive."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.rows_written = 0
        self._handle = None

    def __enter__(self) -> "JsonlSink":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        return self

    def write(self, result: TrialResult) -> None:
        if self._handle is None:
            raise RuntimeError("JsonlSink must be entered before writing")
        self._handle.write(result.to_json() + "\n")
        self.rows_written += 1

    def __exit__(self, *exc_info: object) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load every row of a campaign JSONL file back into dictionaries."""
    rows = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def strip_timing(rows: Iterable[dict[str, Any]]) -> list[str]:
    """Canonicalise rows for determinism comparison: drop timing fields, sort keys.

    Two campaign runs with the same seed must produce equal ``strip_timing``
    output regardless of worker count; ``TrialResult.TIMING_FIELDS`` is the
    single list of fields allowed to differ.
    """
    canonical = []
    for row in rows:
        kept = {key: value for key, value in row.items() if key not in TrialResult.TIMING_FIELDS}
        canonical.append(json.dumps(kept, sort_keys=True))
    return canonical


def execute_specs(
    specs: Sequence[TrialSpec],
    workers: int = 1,
    chunksize: int | None = None,
) -> Iterator[TrialResult]:
    """Yield one :class:`TrialResult` per spec, in spec order.

    ``workers <= 1`` runs inline (no subprocess overhead, simplest debugging);
    otherwise a process pool fans the trials out while this iterator yields
    them back in order.
    """
    if workers <= 1 or len(specs) <= 1:
        for spec in specs:
            yield run_trial(spec)
        return
    if chunksize is None:
        chunksize = max(1, len(specs) // (workers * 4))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        yield from pool.map(run_trial, specs, chunksize=chunksize)


@dataclass(frozen=True)
class CampaignSummary:
    """Aggregate view of a finished campaign run."""

    name: str
    trials: int
    ok: int
    errors: int
    agreement_failures: int
    validity_failures: int
    elapsed_seconds: float
    workers: int
    jsonl_path: str | None

    @property
    def trials_per_second(self) -> float:
        return self.trials / self.elapsed_seconds if self.elapsed_seconds > 0 else float("inf")

    def to_row(self) -> dict[str, Any]:
        """One table row for the CLI / benchmarks."""
        return {
            "campaign": self.name,
            "trials": self.trials,
            "ok": self.ok,
            "errors": self.errors,
            "agreement_failures": self.agreement_failures,
            "validity_failures": self.validity_failures,
            "workers": self.workers,
            "seconds": round(self.elapsed_seconds, 3),
            "trials_per_s": round(self.trials_per_second, 1),
        }


def run_campaign(
    campaign: Campaign,
    workers: int = 1,
    jsonl_path: str | Path | None = None,
    on_result: Callable[[TrialResult], None] | None = None,
    collect: bool = False,
) -> tuple[CampaignSummary, list[TrialResult]]:
    """Run every trial of the campaign, streaming rows to the optional sink.

    Returns the summary and — only when ``collect=True`` — the full result
    list (large sweeps should rely on the JSONL sink instead and keep
    ``collect`` off).
    """
    start = time.perf_counter()
    ok = errors = agreement_failures = validity_failures = 0
    collected: list[TrialResult] = []

    def _consume(results: Iterable[TrialResult]) -> None:
        nonlocal ok, errors, agreement_failures, validity_failures
        for result in results:
            if result.ok:
                ok += 1
                if result.agreement is False:
                    agreement_failures += 1
                if result.validity is False:
                    validity_failures += 1
            else:
                errors += 1
            if sink is not None:
                sink.write(result)
            if on_result is not None:
                on_result(result)
            if collect:
                collected.append(result)

    if jsonl_path is not None:
        with JsonlSink(jsonl_path) as sink:
            _consume(execute_specs(campaign.specs, workers=workers))
    else:
        sink = None
        _consume(execute_specs(campaign.specs, workers=workers))

    summary = CampaignSummary(
        name=campaign.name,
        trials=len(campaign.specs),
        ok=ok,
        errors=errors,
        agreement_failures=agreement_failures,
        validity_failures=validity_failures,
        elapsed_seconds=time.perf_counter() - start,
        workers=workers,
        jsonl_path=str(jsonl_path) if jsonl_path is not None else None,
    )
    return summary, collected
