"""Campaign execution: batch-planned, sequential or worker-pool, JSONL-streamed.

The executor maps a campaign's specs onto one of two execution substrates:

* the **object engine** (:func:`~repro.engine.trial.run_trial`), the
  per-process simulation oracle that can run every spec; and
* the **columnar engine** (:mod:`repro.engine.vectorized`), which executes
  whole same-shape groups of eligible synchronous trials as array programs
  and emits byte-identical rows (modulo ``elapsed_ms``).

:func:`plan_specs` is the batch planner: it groups a spec list by
:func:`~repro.engine.vectorized.vectorized_group_key` shape class, routes
eligible groups to the columnar engine and everything else back to
``run_trial``, recording a structured
:class:`~repro.engine.vectorized.FallbackReason` count for every demotion
(surfaced on :class:`CampaignSummary`).  ``engine="auto"`` additionally keeps
singleton groups on the object engine (no batch to amortise);
``engine="object"`` bypasses planning entirely and preserves the original
streaming behaviour.

With ``workers > 1`` the plan's execution units fan out over the persistent
worker pool (:mod:`repro.engine.pool`): long-lived workers pull cost-model
sized sub-units on demand, specs ship as shared-memory delta columns, and
warm kernel caches survive from one campaign to the next (``pool="spawn"``
keeps the legacy per-call ``ProcessPoolExecutor`` as an escape hatch).
Whatever the engine, pool or worker count, results are always emitted in
spec order and are byte-identical for any ``workers`` value (every trial is
a pure function of its spec; only the ``elapsed_ms`` timing field varies run
to run).

Passing a :class:`~repro.store.backend.ResultStore` (``store=``) turns the
executor into a **write-through cache** over that purity guarantee: every
spec is content-addressed (:func:`~repro.store.keys.trial_key`), cached rows
are served without spawning workers, only the misses are planned and run,
and each completed execution unit commits to the store in one transaction
*before* its rows are emitted — so an interrupted campaign can be resumed
with only the missing trials executed.  When several *processes* share one
store, misses are additionally claimed (:meth:`ResultStore.claim_keys`)
before execution: trials another process is already computing are deferred
and served from its committed rows instead of being recomputed, so
concurrent campaigns over one store do disjoint work.
"""

from __future__ import annotations

import json
import time
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.engine.campaign import Campaign
from repro.engine.pool import POOL_CHOICES, ExecutionUnit, execute_plan
from repro.engine.spec import TrialResult, TrialSpec
from repro.engine.trial import run_trial
from repro.engine.vectorized import (
    FallbackReason,
    run_specs_vectorized,
    vectorization_fallback,
    vectorized_group_key,
)
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.store.backend import ResultStore

__all__ = [
    "ENGINE_CHOICES",
    "POOL_CHOICES",
    "CampaignSummary",
    "JsonlSink",
    "ExecutionUnit",
    "StoreCacheStats",
    "plan_specs",
    "execute_specs",
    "run_campaign",
    "iter_jsonl",
    "read_jsonl",
    "strip_timing",
]

#: Execution substrates the executor can route a campaign through.
ENGINE_CHOICES = ("auto", "vectorized", "object")


class JsonlSink:
    """Append trial rows to a JSON-lines file, one row per trial, as they arrive."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.rows_written = 0
        self._handle = None

    def __enter__(self) -> "JsonlSink":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        return self

    def write(self, result: TrialResult) -> None:
        if self._handle is None:
            raise RuntimeError("JsonlSink must be entered before writing")
        self._handle.write(result.to_json() + "\n")
        self.rows_written += 1

    def __exit__(self, *exc_info: object) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def iter_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Stream a campaign JSONL file one row dictionary at a time.

    Constant memory in the file size — the row consumers (equivalence
    comparisons, store imports) never need the whole file as a list.  Blank
    lines are skipped.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load every row of a campaign JSONL file back into dictionaries."""
    return list(iter_jsonl(path))


def strip_timing(rows: Iterable[dict[str, Any]]) -> list[str]:
    """Canonicalise rows for determinism comparison: drop timing fields, sort keys.

    Two campaign runs with the same seed must produce equal ``strip_timing``
    output regardless of worker count; ``TrialResult.TIMING_FIELDS`` is the
    single list of fields allowed to differ.
    """
    canonical = []
    for row in rows:
        kept = {key: value for key, value in row.items() if key not in TrialResult.TIMING_FIELDS}
        canonical.append(json.dumps(kept, sort_keys=True))
    return canonical


def plan_specs(
    specs: Sequence[TrialSpec],
    engine: str = "auto",
    fallback_reasons: dict[str, int] | None = None,
) -> list[ExecutionUnit]:
    """Partition a spec list into columnar groups and object-engine chunks.

    Eligible specs are grouped by
    :func:`~repro.engine.vectorized.vectorized_group_key`; everything else
    stays on the object engine.  ``engine="auto"`` sends singleton groups to
    the object engine too (a batch of one amortises nothing);
    ``engine="vectorized"`` routes every eligible spec columnar;
    ``engine="object"`` plans one object chunk.

    ``fallback_reasons`` — when provided — is filled with a count per
    :class:`~repro.engine.vectorized.FallbackReason` value for every spec the
    plan routes to the object engine, so a campaign summary can say *why*
    trials missed the columnar engine instead of silently falling back.
    """
    if engine not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINE_CHOICES)}"
        )

    def count_fallback(reason: FallbackReason, occurrences: int = 1) -> None:
        if fallback_reasons is not None and occurrences:
            fallback_reasons[reason.value] = (
                fallback_reasons.get(reason.value, 0) + occurrences
            )

    if engine == "object":
        count_fallback(FallbackReason.FORCED_OBJECT, len(specs))
        return [ExecutionUnit("object", tuple(range(len(specs))))] if specs else []
    groups: dict[tuple, list[int]] = {}
    fallback: list[int] = []
    for position, spec in enumerate(specs):
        reason = vectorization_fallback(spec)
        if reason is None:
            groups.setdefault(vectorized_group_key(spec), []).append(position)
        else:
            fallback.append(position)
            count_fallback(reason)
    units: list[ExecutionUnit] = []
    for positions in groups.values():
        if engine == "auto" and len(positions) < 2:
            fallback.extend(positions)
            count_fallback(FallbackReason.SINGLETON_GROUP, len(positions))
        else:
            units.append(ExecutionUnit("columnar", tuple(positions)))
    if fallback:
        units.append(ExecutionUnit("object", tuple(sorted(fallback))))
    units.sort(key=lambda unit: unit.positions[0])
    return units


def _execute_unit(
    unit: ExecutionUnit, specs: Sequence[TrialSpec]
) -> list[TrialResult]:
    if unit.kind == "columnar":
        return run_specs_vectorized([specs[position] for position in unit.positions])
    return [run_trial(specs[position]) for position in unit.positions]


@dataclass
class StoreCacheStats:
    """Cache outcome of one store-backed execution (filled by ``execute_specs``)."""

    hits: int = 0
    misses: int = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of specs served from the store (0.0 on an empty spec list)."""
        return self.hits / self.total if self.total else 0.0


#: Object-engine units are re-chunked to at most this many trials in store
#: mode, bounding how much completed work one interruption can lose (each
#: chunk commits transactionally on completion).  Kept small: a store commit
#: costs milliseconds while a protocol trial costs ~a second, so a narrow
#: loss window is nearly free.
STORE_COMMIT_CHUNK = 4

#: Cache hits are fetched from the store in slices of this many rows at
#: emission time, keeping warm-resume memory bounded by the batch size (plus
#: the reorder window) instead of the campaign size.
_SERVE_BATCH = 1024


def _split_units_for_commit(units: list[ExecutionUnit]) -> list[ExecutionUnit]:
    """Cap object units at :data:`STORE_COMMIT_CHUNK` trials per transaction.

    Columnar units ship whole — the batch is solved as one array program, so
    it completes (and commits) as one unit anyway.
    """
    split: list[ExecutionUnit] = []
    for unit in units:
        if unit.kind == "object" and len(unit.positions) > STORE_COMMIT_CHUNK:
            for start in range(0, len(unit.positions), STORE_COMMIT_CHUNK):
                split.append(
                    ExecutionUnit("object", unit.positions[start : start + STORE_COMMIT_CHUNK])
                )
        else:
            split.append(unit)
    return split


def _execute_specs_stored(
    specs: Sequence[TrialSpec],
    store: "ResultStore",
    workers: int,
    engine: str,
    reuse_cached: bool,
    cache_stats: StoreCacheStats | None,
    fallback_reasons: dict[str, int] | None = None,
    chunksize: int | None = None,
    pool: str = "persistent",
    claim_wait_timeout: float = 60.0,
) -> Iterator[TrialResult]:
    """Store-backed execution: serve cached rows, run misses, commit per unit.

    ``record_history`` specs are never *served* from the store (per-round
    state histories are not serialised, so a cached row cannot satisfy the
    in-memory consumer), but their rows are still recorded — under a key
    that, by construction, a history-free spec resolves to as well.

    Before executing, each miss key is **claimed** on the store
    (:meth:`~repro.store.backend.ResultStore.claim_keys`): keys another
    process already holds are *deferred* — this run polls for that process's
    committed rows and serves them as cache hits instead of recomputing.  A
    deferred trial whose owner never commits (crash, timeout) is recomputed
    locally after ``claim_wait_timeout`` seconds, so the campaign always
    completes.  Single-writer backends grant every claim, making this path
    identical to the old behaviour.
    """
    from repro.store.keys import trial_key

    keys = [trial_key(spec) for spec in specs]
    # Only the *keys* of cache hits are held for the whole run; the rows
    # themselves are fetched in _SERVE_BATCH-sized slices at emission time,
    # so a warm million-trial resume never materialises the campaign.
    hit_keys: dict[int, str] = {}
    if reuse_cached:
        servable = [key for spec, key in zip(specs, keys) if not spec.record_history]
        present = store.contains_keys(servable)
        for position, (spec, key) in enumerate(zip(specs, keys)):
            if not spec.record_history and key in present:
                hit_keys[position] = key
    if cache_stats is not None:
        cache_stats.hits = len(hit_keys)
        cache_stats.misses = len(specs) - len(hit_keys)
    miss_positions = [position for position in range(len(specs)) if position not in hit_keys]

    # Claim the misses so concurrent campaigns over this store split the
    # work: denied keys are being computed elsewhere — defer them and serve
    # the other process's rows.  record_history misses always run locally
    # (a stored row cannot carry the in-memory histories).
    owner = uuid.uuid4().hex
    deferred: dict[int, str] = {}
    claimed_keys: list[str] = []
    if reuse_cached and miss_positions:
        claimable = list(
            dict.fromkeys(
                keys[position]
                for position in miss_positions
                if not specs[position].record_history
            )
        )
        granted = store.claim_keys(claimable, owner) if claimable else set()
        claimed_keys = [key for key in claimable if key in granted]
        for position in miss_positions:
            if not specs[position].record_history and keys[position] not in granted:
                deferred[position] = keys[position]
    run_positions = [position for position in miss_positions if position not in deferred]
    run_specs = [specs[position] for position in run_positions]

    pending: dict[int, TrialResult] = {}
    emitted = 0

    def _drain() -> Iterator[TrialResult]:
        nonlocal emitted
        while True:
            if emitted in pending:
                yield pending.pop(emitted)
                emitted += 1
            elif emitted in hit_keys:
                # Serve the next contiguous run of cached positions in one
                # bounded fetch.
                batch = []
                position = emitted
                while position in hit_keys and len(batch) < _SERVE_BATCH:
                    batch.append(position)
                    position += 1
                rows = store.get_rows([hit_keys[position] for position in batch])
                for position in batch:
                    row = rows.get(hit_keys[position])
                    if row is None:
                        raise RuntimeError(
                            f"store row for trial {position} vanished during execution; "
                            "result stores must not be mutated concurrently with a run"
                        )
                    # Reattach the *requested* spec: the stored row may carry
                    # a different trial_index (key-excluded field), and the
                    # emitted row must be byte-identical to a fresh run.
                    yield replace(TrialResult.from_row(row), spec=specs[position])
                    del hit_keys[position]
                    emitted = position + 1
            elif emitted in deferred:
                # Another process owns these trials; serve whatever it has
                # committed so far, stopping at the first still-absent row.
                batch = []
                position = emitted
                while position in deferred and len(batch) < _SERVE_BATCH:
                    batch.append(position)
                    position += 1
                rows = store.get_rows([deferred[position] for position in batch])
                progressed = False
                for position in batch:
                    row = rows.get(deferred[position])
                    if row is None:
                        break
                    yield replace(TrialResult.from_row(row), spec=specs[position])
                    if cache_stats is not None:
                        cache_stats.hits += 1
                        cache_stats.misses -= 1
                    del deferred[position]
                    emitted = position + 1
                    progressed = True
                if not progressed:
                    return
            else:
                return

    def _commit(local_positions: Sequence[int], unit_result: list[TrialResult]) -> None:
        # Commit-then-emit: once a row has been yielded downstream, it is
        # guaranteed to be in the store, so resuming after an interruption
        # can never lose acknowledged work.
        store.put_results(
            (keys[run_positions[local]], result)
            for local, result in zip(local_positions, unit_result)
        )
        for local, result in zip(local_positions, unit_result):
            pending[run_positions[local]] = result

    try:
        # Serve every prefix-complete cached row before any execution starts.
        yield from _drain()
        units = _split_units_for_commit(plan_specs(run_specs, engine, fallback_reasons))
        if workers <= 1 or len(run_specs) <= 1:
            for unit in units:
                _commit(unit.positions, _execute_unit(unit, run_specs))
                yield from _drain()
        else:
            for local_positions, unit_result in execute_plan(
                run_specs, units, workers, chunksize, pool
            ):
                _commit(local_positions, unit_result)
                yield from _drain()

        # Wait out trials owned by other processes, then recompute leftovers.
        if deferred:
            deadline = time.monotonic() + claim_wait_timeout
            delay = 0.05
            while deferred and time.monotonic() < deadline:
                before = len(deferred)
                yield from _drain()
                if deferred and len(deferred) == before:
                    time.sleep(delay)
                    delay = min(delay * 1.6, 1.0)
        if deferred:
            # The owning process never committed (crashed or stuck): finish
            # its share ourselves.  Last-write-wins commits keep this safe
            # even if it eventually completes too.
            retry_positions = sorted(deferred)
            retry_specs = [specs[position] for position in retry_positions]
            for unit in _split_units_for_commit(
                plan_specs(retry_specs, engine, fallback_reasons)
            ):
                unit_result = _execute_unit(unit, retry_specs)
                store.put_results(
                    (keys[retry_positions[local]], result)
                    for local, result in zip(unit.positions, unit_result)
                )
                for local, result in zip(unit.positions, unit_result):
                    pending[retry_positions[local]] = result
                    deferred.pop(retry_positions[local], None)
                yield from _drain()
    finally:
        if claimed_keys:
            try:
                store.release_claims(claimed_keys, owner)
            except Exception:  # noqa: BLE001 — claims expire by TTL anyway
                pass


def execute_specs(
    specs: Sequence[TrialSpec],
    workers: int = 1,
    chunksize: int | None = None,
    engine: str = "auto",
    store: "ResultStore | None" = None,
    reuse_cached: bool = True,
    cache_stats: StoreCacheStats | None = None,
    fallback_reasons: dict[str, int] | None = None,
    pool: str = "persistent",
    claim_wait_timeout: float = 60.0,
) -> Iterator[TrialResult]:
    """Yield one :class:`TrialResult` per spec, in spec order.

    ``engine`` picks the execution substrate (see :data:`ENGINE_CHOICES`);
    the emitted rows are byte-identical (modulo ``elapsed_ms``) for every
    engine, pool and worker count.  ``workers <= 1`` runs inline (no
    subprocess overhead, simplest debugging); otherwise the plan's execution
    units are cut into cost-model-sized tasks and fanned out over the
    ``pool`` substrate (:data:`POOL_CHOICES` — the persistent shared-memory
    pool by default) while this iterator yields results back in order.  An
    explicit ``chunksize`` overrides the cost model's task sizing on every
    multi-worker path.

    With ``store`` set, execution becomes a write-through cache: cached rows
    are served without running anything (unless ``reuse_cached`` is False,
    which forces recomputation while still recording), misses commit to the
    store transactionally per execution unit, and ``cache_stats`` — if
    provided — is filled with the hit/miss split (trials served from a
    concurrent process's commits count as hits).  Rows remain byte-identical
    to an uncached run, whichever side of the cache they came from.
    ``claim_wait_timeout`` bounds how long this run waits for rows another
    process has claimed before recomputing them itself.
    """
    if engine not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; known: {', '.join(ENGINE_CHOICES)}"
        )
    if pool not in POOL_CHOICES:
        raise ConfigurationError(
            f"unknown pool {pool!r}; known: {', '.join(POOL_CHOICES)}"
        )
    if store is not None:
        yield from _execute_specs_stored(
            specs,
            store,
            workers,
            engine,
            reuse_cached,
            cache_stats,
            fallback_reasons,
            chunksize,
            pool,
            claim_wait_timeout,
        )
        return
    if engine == "object" and (workers <= 1 or len(specs) <= 1):
        if fallback_reasons is not None:
            # The object fast path bypasses planning; run the planner purely
            # for its fallback accounting.
            plan_specs(specs, engine, fallback_reasons)
        for spec in specs:
            yield run_trial(spec)
        return

    units = plan_specs(specs, engine, fallback_reasons)
    # Reorder buffer: holds only results that arrived ahead of spec order;
    # every emitted result is released immediately, so memory stays bounded
    # by the out-of-order window rather than the campaign size.
    pending: dict[int, TrialResult] = {}
    emitted = 0

    def _drain(
        positions: Sequence[int], unit_result: list[TrialResult]
    ) -> Iterator[TrialResult]:
        nonlocal emitted
        for position, result in zip(positions, unit_result):
            pending[position] = result
        # Stream every prefix-complete result so sinks fill while later
        # units are still running.
        while emitted in pending:
            yield pending.pop(emitted)
            emitted += 1

    if workers <= 1 or len(specs) <= 1:
        for unit in units:
            yield from _drain(unit.positions, _execute_unit(unit, specs))
        return
    # The pool cuts every unit — object chunks *and* columnar groups — into
    # cost-model-sized tasks and yields them in completion order; the
    # reorder buffer above restores spec order.
    for positions, unit_result in execute_plan(specs, units, workers, chunksize, pool):
        yield from _drain(positions, unit_result)


@dataclass(frozen=True)
class CampaignSummary:
    """Aggregate view of a finished campaign run."""

    name: str
    trials: int
    ok: int
    errors: int
    agreement_failures: int
    validity_failures: int
    elapsed_seconds: float
    workers: int
    jsonl_path: str | None
    engine: str = "object"
    #: Dispatch substrate used for multi-worker execution (:data:`POOL_CHOICES`).
    pool: str = "persistent"
    #: Trials served straight from the results store (0 without a store).
    cache_hits: int = 0
    #: Executed trials the planner routed to the object engine, counted per
    #: :class:`~repro.engine.vectorized.FallbackReason` value.  Store-served
    #: trials are never planned, so they are not counted here.
    fallback_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def trials_per_second(self) -> float:
        """Throughput, clamped to 0.0 when no time was measured.

        A zero-length (or clock-resolution-zero) run must not report
        ``inf``: ``json.dumps`` would emit ``Infinity``, which is not valid
        JSON and breaks downstream row consumers.
        """
        return self.trials / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def to_row(self) -> dict[str, Any]:
        """One table row for the CLI / benchmarks."""
        return {
            "campaign": self.name,
            "engine": self.engine,
            "trials": self.trials,
            "ok": self.ok,
            "errors": self.errors,
            "agreement_failures": self.agreement_failures,
            "validity_failures": self.validity_failures,
            "workers": self.workers,
            "pool": self.pool,
            "cache_hits": self.cache_hits,
            "fallbacks": sum(self.fallback_reasons.values()),
            "seconds": round(self.elapsed_seconds, 3),
            "trials_per_s": round(self.trials_per_second, 1),
        }


def run_campaign(
    campaign: Campaign,
    workers: int = 1,
    jsonl_path: str | Path | None = None,
    on_result: Callable[[TrialResult], None] | None = None,
    collect: bool = False,
    engine: str = "auto",
    store: "ResultStore | str | Path | None" = None,
    reuse_cached: bool = True,
    pool: str = "persistent",
    chunksize: int | None = None,
) -> tuple[CampaignSummary, list[TrialResult]]:
    """Run every trial of the campaign, streaming rows to the optional sink.

    ``engine`` selects the execution substrate (:data:`ENGINE_CHOICES`) and
    ``pool`` the multi-worker dispatch substrate (:data:`POOL_CHOICES`); rows
    are byte-identical across engines, pools and worker counts modulo
    ``elapsed_ms``.  ``store`` — a
    :class:`~repro.store.backend.ResultStore` or a path, opened (and closed)
    here via :func:`~repro.store.backend.open_store` — enables the
    write-through cache: cached trials are served without execution (set
    ``reuse_cached=False`` to force recomputation while still recording),
    misses commit per execution unit, and the summary's ``cache_hits``
    reports the split.  Returns the summary and — only when ``collect=True``
    — the full result list (large sweeps should rely on the JSONL sink
    instead and keep ``collect`` off).
    """
    start = time.perf_counter()
    ok = errors = agreement_failures = validity_failures = 0
    collected: list[TrialResult] = []

    opened_store: "ResultStore | None" = None
    if isinstance(store, (str, Path)):
        from repro.store.backend import open_store

        store = opened_store = open_store(store)
    cache_stats = StoreCacheStats() if store is not None else None
    fallback_reasons: dict[str, int] = {}

    def _consume(results: Iterable[TrialResult]) -> None:
        nonlocal ok, errors, agreement_failures, validity_failures
        for result in results:
            if result.ok:
                ok += 1
                if result.agreement is False:
                    agreement_failures += 1
                if result.validity is False:
                    validity_failures += 1
            else:
                errors += 1
            if sink is not None:
                sink.write(result)
            if on_result is not None:
                on_result(result)
            if collect:
                collected.append(result)

    try:
        results = execute_specs(
            campaign.specs,
            workers=workers,
            chunksize=chunksize,
            engine=engine,
            store=store,
            reuse_cached=reuse_cached,
            cache_stats=cache_stats,
            fallback_reasons=fallback_reasons,
            pool=pool,
        )
        if jsonl_path is not None:
            with JsonlSink(jsonl_path) as sink:
                _consume(results)
        else:
            sink = None
            _consume(results)
    finally:
        if opened_store is not None:
            opened_store.close()

    summary = CampaignSummary(
        name=campaign.name,
        trials=len(campaign.specs),
        ok=ok,
        errors=errors,
        agreement_failures=agreement_failures,
        validity_failures=validity_failures,
        elapsed_seconds=time.perf_counter() - start,
        workers=workers,
        jsonl_path=str(jsonl_path) if jsonl_path is not None else None,
        engine=engine,
        pool=pool,
        cache_hits=cache_stats.hits if cache_stats is not None else 0,
        fallback_reasons=fallback_reasons,
    )
    return summary, collected
