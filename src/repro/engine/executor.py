"""Campaign execution entry points: thin wrappers over :class:`CampaignSession`.

The planning, cache, claim and dispatch machinery lives in
:mod:`repro.engine.session` — a campaign run is a first-class
:class:`~repro.engine.session.CampaignSession` object with typed progress
events, cooperative cancellation and status snapshots.  This module keeps the
historical functional surface on top of it:

* :func:`execute_specs` — yield one row per spec, in spec order, through a
  session (byte-identical to the pre-session engine for every engine, pool
  and worker count, modulo ``elapsed_ms``);
* :func:`run_campaign` — run a whole :class:`~repro.engine.campaign.Campaign`
  with JSONL sink / callback / collection plumbing and return its
  :class:`~repro.engine.session.CampaignSummary`;
* the JSONL row helpers (:class:`JsonlSink`, :func:`iter_jsonl`,
  :func:`read_jsonl`, :func:`strip_timing`) used by equivalence comparisons
  and store imports.

There is exactly **one** planning/claims/cache code path — the session's; no
execution logic remains here.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Sequence

from repro.engine.campaign import Campaign
from repro.engine.pool import POOL_CHOICES, ExecutionUnit
from repro.engine.session import (
    ENGINE_CHOICES,
    STORE_COMMIT_CHUNK,
    CampaignSession,
    CampaignSummary,
    StoreCacheStats,
    plan_specs,
)
from repro.engine.spec import TrialResult, TrialSpec
from repro.obs.trace import TraceRecorder

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.store.backend import ResultStore

__all__ = [
    "ENGINE_CHOICES",
    "POOL_CHOICES",
    "STORE_COMMIT_CHUNK",
    "CampaignSession",
    "CampaignSummary",
    "JsonlSink",
    "ExecutionUnit",
    "StoreCacheStats",
    "plan_specs",
    "execute_specs",
    "run_campaign",
    "iter_jsonl",
    "read_jsonl",
    "strip_timing",
]


class JsonlSink:
    """Append trial rows to a JSON-lines file, one row per trial, as they arrive."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.rows_written = 0
        self._handle = None

    def __enter__(self) -> "JsonlSink":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        return self

    def write(self, result: TrialResult) -> None:
        if self._handle is None:
            raise RuntimeError("JsonlSink must be entered before writing")
        self._handle.write(result.to_json() + "\n")
        self.rows_written += 1

    def __exit__(self, *exc_info: object) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def iter_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Stream a campaign JSONL file one row dictionary at a time.

    Constant memory in the file size — the row consumers (equivalence
    comparisons, store imports) never need the whole file as a list.  Blank
    lines are skipped.
    """
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Load every row of a campaign JSONL file back into dictionaries."""
    return list(iter_jsonl(path))


def strip_timing(rows: Iterable[dict[str, Any]]) -> list[str]:
    """Canonicalise rows for determinism comparison: drop timing fields, sort keys.

    Two campaign runs with the same seed must produce equal ``strip_timing``
    output regardless of worker count; ``TrialResult.TIMING_FIELDS`` is the
    single list of fields allowed to differ.
    """
    canonical = []
    for row in rows:
        kept = {key: value for key, value in row.items() if key not in TrialResult.TIMING_FIELDS}
        canonical.append(json.dumps(kept, sort_keys=True))
    return canonical


def execute_specs(
    specs: Sequence[TrialSpec],
    workers: int = 1,
    chunksize: int | None = None,
    engine: str = "auto",
    store: "ResultStore | None" = None,
    reuse_cached: bool = True,
    cache_stats: StoreCacheStats | None = None,
    fallback_reasons: dict[str, int] | None = None,
    pool: str = "persistent",
    claim_wait_timeout: float = 60.0,
) -> Iterator[TrialResult]:
    """Yield one :class:`TrialResult` per spec, in spec order.

    ``engine`` picks the execution substrate (see :data:`ENGINE_CHOICES`);
    the emitted rows are byte-identical (modulo ``elapsed_ms``) for every
    engine, pool and worker count.  ``workers <= 1`` runs inline (no
    subprocess overhead, simplest debugging); otherwise the plan's execution
    units are cut into cost-model-sized tasks and fanned out over the
    ``pool`` substrate (:data:`POOL_CHOICES` — the persistent shared-memory
    pool by default) while this iterator yields results back in order.  An
    explicit ``chunksize`` overrides the cost model's task sizing on every
    multi-worker path.

    With ``store`` set, execution becomes a write-through cache: cached rows
    are served without running anything (unless ``reuse_cached`` is False,
    which forces recomputation while still recording), misses commit to the
    store transactionally per execution unit, and ``cache_stats`` — if
    provided — is filled with the hit/miss split (trials served from a
    concurrent process's commits count as hits).  Rows remain byte-identical
    to an uncached run, whichever side of the cache they came from.
    ``claim_wait_timeout`` bounds how long this run waits for rows another
    process has claimed before recomputing them itself.
    """
    session = CampaignSession(
        specs,
        workers=workers,
        chunksize=chunksize,
        engine=engine,
        store=store,
        reuse_cached=reuse_cached,
        pool=pool,
        claim_wait_timeout=claim_wait_timeout,
        cache_stats=cache_stats,
        fallback_reasons=fallback_reasons,
    )
    yield from session.rows()


def run_campaign(
    campaign: Campaign,
    workers: int = 1,
    jsonl_path: str | Path | None = None,
    on_result: Callable[[TrialResult], None] | None = None,
    collect: bool = False,
    engine: str = "auto",
    store: "ResultStore | str | Path | None" = None,
    reuse_cached: bool = True,
    pool: str = "persistent",
    chunksize: int | None = None,
    session_factory: Callable[..., CampaignSession] = CampaignSession,
    trace: TraceRecorder | None = None,
) -> tuple[CampaignSummary, list[TrialResult]]:
    """Run every trial of the campaign, streaming rows to the optional sink.

    ``engine`` selects the execution substrate (:data:`ENGINE_CHOICES`) and
    ``pool`` the multi-worker dispatch substrate (:data:`POOL_CHOICES`); rows
    are byte-identical across engines, pools and worker counts modulo
    ``elapsed_ms``.  ``store`` — a
    :class:`~repro.store.backend.ResultStore` or a path, opened (and closed)
    by the session via :func:`~repro.store.backend.open_store` — enables the
    write-through cache: cached trials are served without execution (set
    ``reuse_cached=False`` to force recomputation while still recording),
    misses commit per execution unit, and the summary's ``cache_hits``
    reports the split.  Returns the summary and — only when ``collect=True``
    — the full result list (large sweeps should rely on the JSONL sink
    instead and keep ``collect`` off).

    ``session_factory`` lets callers observe or steer the underlying
    :class:`CampaignSession` (e.g. to keep a handle for ``status()`` or
    ``cancel()``) without a second execution path.  ``trace`` hands the
    session a :class:`~repro.obs.trace.TraceRecorder`; the caller owns
    writing the recorded timeline out (``trace.write(path)``).
    """
    session = session_factory(
        campaign,
        workers=workers,
        chunksize=chunksize,
        engine=engine,
        store=store,
        reuse_cached=reuse_cached,
        pool=pool,
        trace=trace,
    )
    collected: list[TrialResult] = []

    def _consume(results: Iterable[TrialResult], sink: JsonlSink | None) -> None:
        for result in results:
            if sink is not None:
                sink.write(result)
            if on_result is not None:
                on_result(result)
            if collect:
                collected.append(result)

    results = session.rows()
    try:
        if jsonl_path is not None:
            with JsonlSink(jsonl_path) as sink:
                _consume(results, sink)
        else:
            _consume(results, None)
    finally:
        # Deterministic cleanup on consumer errors: closing the row iterator
        # releases claims and closes a session-owned store.
        results.close()

    return session.summary(jsonl_path), collected
