"""Scenario fuzzing: random workload × adversary × scheduler compositions.

The ROADMAP's "as many scenarios as you can imagine" axis, made executable:
:func:`sample_specs` draws random — but seed-deterministic — compositions of
protocol, workload generator, adversary strategy (independent *and*
coordinated), delivery scheduler, ``(n, d, f)`` configuration and epsilon,
always at or above the paper's resilience bound for the protocol, and
:func:`run_fuzz` executes them through the campaign executor while asserting
the paper's two safety invariants on every completed trial:

* **agreement** (exact or epsilon, per protocol), and
* **validity** (every honest decision inside the honest-input hull).

Above the resilience bounds the theorems promise both invariants against
*every* adversary, so any violation — or any trial that errors out — is a
bug in the implementation (or a genuinely new attack) and is reported as a
violation row.  Because the harness runs as a
:class:`~repro.engine.session.CampaignSession`, fuzz runs inherit the
engine's guarantees: the same seed produces the same compositions and
byte-identical JSONL rows (modulo ``elapsed_ms``) for any worker count.

Protocol coverage notes baked into the defaults:

* ``coordinatewise`` is excluded — it is the *counterexample baseline* whose
  vector-validity violations are the expected behaviour (experiment E1), not
  an invariant to assert.
* ``restricted_async`` is excluded — its static round threshold
  (``gamma = 1/(n·C(n-f, n-3f))``) makes unconstrained runs explode, and any
  round cap forfeits the epsilon-agreement guarantee the harness asserts.
* Approximate protocols fuzz at ``f = 1`` and small ``d`` so the static
  termination rule stays within seconds per trial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.engine.campaign import Campaign
from repro.engine.executor import JsonlSink
from repro.engine.session import CampaignSession
from repro.engine.factories import (
    ADVERSARY_NAMES,
    SCHEDULER_NAMES,
    minimum_processes_for,
)
from repro.engine.spec import PROTOCOLS, TrialResult, TrialSpec
from repro.obs.trace import TraceRecorder
from repro.exceptions import ConfigurationError

__all__ = [
    "FUZZ_PROTOCOLS",
    "FUZZ_WORKLOADS",
    "FUZZ_ADVERSARIES",
    "FuzzViolation",
    "FuzzReport",
    "sample_specs",
    "run_fuzz",
]

FUZZ_PROTOCOLS = ("exact", "approx", "restricted_sync")

FUZZ_WORKLOADS = ("uniform_box", "probability_vector", "robot_position", "gradient")

FUZZ_ADVERSARIES = ADVERSARY_NAMES

FUZZ_EPSILONS = (0.2, 0.3, 0.5)


def _pick(rng: np.random.Generator, options: Sequence[Any]) -> Any:
    return options[int(rng.integers(0, len(options)))]


def sample_specs(
    count: int,
    seed: int = 0,
    protocols: Sequence[str] = FUZZ_PROTOCOLS,
    workloads: Sequence[str] = FUZZ_WORKLOADS,
    adversaries: Sequence[str] = FUZZ_ADVERSARIES,
    schedulers: Sequence[str] = SCHEDULER_NAMES,
) -> list[TrialSpec]:
    """Draw ``count`` random scenario compositions, deterministically from ``seed``.

    Every sampled configuration sits at or up to one process above the
    protocol's resilience bound for its ``(d, f)`` — the regime where the
    paper guarantees both invariants against any adversary.  Trial root seeds
    are spawned from the same sequence, so the whole sample is a pure
    function of ``(count, seed, axes)``.
    """
    if count < 1:
        raise ConfigurationError("fuzz sample count must be at least 1")
    # Every axis must be a non-empty subset of its samplable set: an invalid
    # or empty axis here would otherwise surface downstream as trial errors
    # dressed up as invariant violations — the one thing a violation row must
    # never mean.  Only the fuzz-safe protocols are allowed (coordinatewise
    # violates validity by design, restricted_async cannot run unconstrained)
    # and fixed-instance workloads (intro_counterexample) ignore the sampled
    # (n, d, f).
    axes = (
        ("protocols", protocols, FUZZ_PROTOCOLS),
        ("workloads", workloads, FUZZ_WORKLOADS),
        ("adversaries", adversaries, ADVERSARY_NAMES),
        ("schedulers", schedulers, SCHEDULER_NAMES),
    )
    for axis_name, values, allowed in axes:
        if not values:
            raise ConfigurationError(f"fuzz axis {axis_name!r} must not be empty")
        unknown = set(values) - set(allowed)
        if unknown:
            raise ConfigurationError(
                f"{axis_name} not fuzzable: {sorted(unknown)}; "
                f"the samplable set is {', '.join(allowed)}"
            )
    # Child 0 drives the axis sampling; successive spawn calls continue the
    # child numbering, so the second spawn yields children 1..count — one
    # independent root seed per trial.
    root = np.random.SeedSequence(seed)
    rng = np.random.default_rng(root.spawn(1)[0])
    trial_seeds = [
        int(child.generate_state(1, dtype=np.uint32)[0]) for child in root.spawn(count)
    ]
    specs: list[TrialSpec] = []
    for index in range(count):
        protocol = _pick(rng, protocols)
        synchronous = PROTOCOLS[protocol][0] == "sync"
        approximate = PROTOCOLS[protocol][1]
        # Approximate protocols keep (d, f) small so the static round rule
        # (conservative in gamma) stays within seconds per trial.
        dimension = int(_pick(rng, (1, 2, 3) if protocol == "exact" else (1, 2)))
        fault_bound = int(_pick(rng, (1, 2) if protocol == "exact" else (1,)))
        process_count = minimum_processes_for(protocol, dimension, fault_bound) + int(
            rng.integers(0, 2)
        )
        workload = _pick(rng, workloads)
        adversary = _pick(rng, adversaries)
        scheduler = _pick(rng, schedulers) if not synchronous else "random"
        epsilon = float(_pick(rng, FUZZ_EPSILONS)) if approximate else 0.2
        adversary_params: dict[str, Any] = {}
        if adversary == "coordinate_attack":
            adversary_params = {
                "coordinate": int(rng.integers(0, dimension)),
                "target": round(float(rng.uniform(-2.0, 2.0)), 3),
            }
        elif adversary == "theorem4_scenario":
            adversary_params = {"crash_round": int(rng.integers(1, 3))}
        specs.append(
            TrialSpec(
                protocol=protocol,
                workload=workload,
                adversary=adversary,
                scheduler=scheduler,
                process_count=process_count,
                dimension=dimension,
                fault_bound=fault_bound,
                epsilon=epsilon,
                seed=trial_seeds[index],
                adversary_params=adversary_params,
                trial_index=index,
            )
        )
    return specs


@dataclass(frozen=True)
class FuzzViolation:
    """One trial that broke an invariant (or crashed)."""

    trial_index: int
    reason: str  # "error" | "agreement" | "validity"
    detail: str
    spec: TrialSpec

    def to_row(self) -> dict[str, Any]:
        return {
            "trial": self.trial_index,
            "reason": self.reason,
            "protocol": self.spec.protocol,
            "workload": self.spec.workload,
            "adversary": self.spec.adversary,
            "scheduler": self.spec.scheduler,
            "n": self.spec.process_count,
            "d": self.spec.dimension,
            "f": self.spec.fault_bound,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzz run: counters plus every invariant violation."""

    name: str
    runs: int
    ok: int
    errors: int
    agreement_failures: int
    validity_failures: int
    elapsed_seconds: float
    workers: int
    jsonl_path: str | None
    violations: tuple[FuzzViolation, ...] = field(default=())
    #: Scenarios served straight from the results store (0 without a store).
    cache_hits: int = 0
    #: Executed scenarios demoted to the object engine, per fallback reason.
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    #: Identifier of the session that ran the sample ("" for hand-built reports).
    run_id: str = ""

    @property
    def clean(self) -> bool:
        """True when every sampled scenario upheld both invariants."""
        return not self.violations

    def to_row(self) -> dict[str, Any]:
        return {
            "fuzz": self.name,
            "runs": self.runs,
            "ok": self.ok,
            "errors": self.errors,
            "agreement_failures": self.agreement_failures,
            "validity_failures": self.validity_failures,
            "violations": len(self.violations),
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "seconds": round(self.elapsed_seconds, 3),
        }


def _violation_of(result: TrialResult) -> FuzzViolation | None:
    spec = result.spec
    if not result.ok:
        return FuzzViolation(spec.trial_index, "error", result.error or "unknown error", spec)
    if result.agreement is False:
        return FuzzViolation(
            spec.trial_index,
            "agreement",
            f"max_disagreement={result.max_disagreement:.3e} (epsilon={spec.epsilon})",
            spec,
        )
    if result.validity is False:
        return FuzzViolation(
            spec.trial_index,
            "validity",
            f"max_hull_distance={result.max_hull_distance:.3e}",
            spec,
        )
    return None


def run_fuzz(
    count: int = 200,
    seed: int = 0,
    workers: int = 1,
    jsonl_path: str | Path | None = None,
    protocols: Sequence[str] = FUZZ_PROTOCOLS,
    workloads: Sequence[str] = FUZZ_WORKLOADS,
    adversaries: Sequence[str] = FUZZ_ADVERSARIES,
    schedulers: Sequence[str] = SCHEDULER_NAMES,
    engine: str = "auto",
    store: Any = None,
    reuse_cached: bool = True,
    pool: str = "persistent",
    trace: TraceRecorder | None = None,
) -> FuzzReport:
    """Sample ``count`` scenarios and execute them, checking both invariants.

    Runs as a :class:`~repro.engine.session.CampaignSession`, so rows stream
    to the optional JSONL sink in trial order and the output is
    worker-count-invariant.  ``store`` (a
    :class:`~repro.store.backend.ResultStore` or path) enables the engine's
    write-through cache — invariants are still asserted on served rows, so a
    resumed fuzz run re-checks everything while recomputing nothing.  The
    report collects one :class:`FuzzViolation` per trial that errored,
    disagreed, or decided outside the honest hull; a clean report means
    every composition upheld the paper's guarantees.
    """
    specs = sample_specs(
        count,
        seed=seed,
        protocols=protocols,
        workloads=workloads,
        adversaries=adversaries,
        schedulers=schedulers,
    )
    campaign = Campaign.from_specs(f"fuzz-seed{seed}", specs)
    violations: list[FuzzViolation] = []

    session = CampaignSession(
        campaign,
        workers=workers,
        engine=engine,
        store=store,
        reuse_cached=reuse_cached,
        pool=pool,
        trace=trace,
    )

    def _consume(results, sink: JsonlSink | None) -> None:
        for result in results:
            if sink is not None:
                sink.write(result)
            violation = _violation_of(result)
            if violation is not None:
                violations.append(violation)

    results = session.rows()
    try:
        if jsonl_path is not None:
            with JsonlSink(jsonl_path) as sink:
                _consume(results, sink)
        else:
            _consume(results, None)
    finally:
        results.close()

    summary = session.summary(jsonl_path)
    return FuzzReport(
        name=campaign.name,
        runs=summary.trials,
        ok=summary.ok,
        errors=summary.errors,
        agreement_failures=summary.agreement_failures,
        validity_failures=summary.validity_failures,
        elapsed_seconds=summary.elapsed_seconds,
        workers=workers,
        jsonl_path=str(jsonl_path) if jsonl_path is not None else None,
        violations=tuple(violations),
        cache_hits=summary.cache_hits,
        fallback_reasons=dict(summary.fallback_reasons),
        run_id=session.run_id,
    )
