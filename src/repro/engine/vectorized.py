"""Columnar vectorized execution substrate for synchronous campaign batches.

The object runtime (:func:`~repro.engine.trial.run_trial`) simulates every
trial as per-process Python objects exchanging per-round ``Message`` objects.
That is the right oracle — it is the literal paper model — but for the
lock-step synchronous protocols it spends most of its time re-deriving work
that is *identical across processes and trials*: every honest process of a
fault-free restricted-round trial holds the same receive matrix, enumerates
the same subset families and solves the same ``Gamma`` programs.

This module executes whole same-shape groups of trials as array programs:

* honest state lives in ``(trials, n, d)`` NumPy arrays; honest "messages"
  are array broadcasts (``reports[t, r, s] = state[t, s]``), not objects;
* Byzantine senders are driven through the *actual* independent-strategy
  mutator objects (built by :func:`~repro.engine.factories.make_adversaries`)
  on real ``Message`` envelopes, in the object runtime's exact
  ``(round, sender, recipient)`` order — so every corruption, RNG draw and
  drop is bit-for-bit the one the object runtime would produce;
* all ``Gamma`` queries of a round — across every process of every trial in
  the batch — are answered by one
  :meth:`~repro.geometry.kernel.GammaKernel.points_multi` pass, which dedupes
  bitwise-identical clouds and solves each distinct cloud through the same
  cached-template program a single :meth:`point` call would use;
* the state transitions themselves are the pure functions of
  :mod:`repro.core.round_ops`, shared with the per-process classes.

Because deduplication and memoisation only ever *reuse* the result of the
deterministic solve the object runtime would perform, the emitted
:class:`~repro.engine.spec.TrialResult` rows are byte-identical to the object
engine's (modulo the ``elapsed_ms`` timing field) — including error rows,
which re-raise through the same validation calls in the same order.

Coordinated (whole-coalition) adversaries are batched too: ``split_world``,
``hull_collapse`` and ``adaptive_extreme`` are round-synchronous functions of
the honest state, so instead of routing per-message mutators the engine asks
the trial's :class:`~repro.byzantine.coordinator.AdversaryCoordinator` for the
round's per-recipient report points directly (feeding the coordinator's
traffic-sighting buckets in the object runtime's exact observation order, and
pre-seeding the ``hull_collapse`` targets of a whole group through one
:meth:`~repro.geometry.kernel.GammaKernel.points_multi` pass).
``theorem4_scenario`` reduces to per-process crash faults and runs through
the generic mutator-driven path.

The restricted *asynchronous* protocol is batched when its delivery order is
deterministic: a trial's event structure (which process aggregates which
senders' round-``t`` states, in which order) depends only on the scheduler
decision sequence, never on the state values, so trials sharing a scheduler
signature share one recorded event skeleton and replay their own values
through it (one real scheduler-driven run per signature, memoised ``Gamma``
choices across the group).

Eligibility (:func:`vectorization_fallback` names the reason for everything
that must fall back to ``run_trial``):

* ``restricted_sync`` supports every independent adversary strategy *and*
  the coordinated strategies (see above);
* ``exact`` and ``coordinatewise`` are supported fault-free
  (``adversary == "none"``): their round traffic is EIG relay trees, which
  the columnar substrate collapses to the known fault-free resolution —
  under an active adversary that shortcut would not be faithful;
* ``restricted_async`` is supported fault-free under the deterministic
  schedulers (:data:`VECTORIZED_ASYNC_SCHEDULERS`); the ``random`` scheduler
  has no reusable decision sequence, and adversaries would make the event
  structure value-dependent;
* ``approx`` (witness-based asynchronous) always falls back: its per-process
  witness bookkeeping has no columnar equivalent.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from enum import Enum
from typing import Mapping, Sequence

import numpy as np

from repro.byzantine.coordinator import AdversaryCoordinator
from repro.core.aggregation import AggregationStep, SafeAverageAggregator
from repro.core.approx_bvc import contraction_factor, round_threshold
from repro.core.conditions import check_exact_sync, check_restricted_sync
from repro.core.restricted_async import RestrictedAsyncProcess
from repro.core.round_ops import (
    coordinatewise_decision,
    restricted_round_clouds,
    restricted_round_reduce,
)
from repro.core.safe_area import SafeAreaCalculator
from repro.core.validity import (
    ValidityReport,
    check_approximate_outcome,
    check_exact_outcome,
)
from repro.engine.factories import build_registry, build_scheduler, make_adversaries
from repro.engine.spec import PROTOCOLS, TrialResult, TrialSpec
from repro.exceptions import (
    ConfigurationError,
    EmptyIntersectionError,
    TerminationError,
)
from repro.geometry.kernel import default_kernel
from repro.geometry.multisets import PointMultiset
from repro.network.async_runtime import AsynchronousRuntime
from repro.network.message import Message
from repro.processes.registry import ProcessRegistry

__all__ = [
    "VECTORIZED_RESTRICTED_ADVERSARIES",
    "VECTORIZED_ASYNC_SCHEDULERS",
    "FallbackReason",
    "vectorization_fallback",
    "spec_is_vectorizable",
    "vectorized_group_key",
    "vectorized_stats_snapshot",
    "run_specs_vectorized",
]

#: Adversary strategies the restricted-round columnar path drives faithfully:
#: the independent strategies run through the real mutator objects in
#: object-runtime order, and the coordinated strategies through the shared
#: coordinator's batched planning accessors.
VECTORIZED_RESTRICTED_ADVERSARIES = frozenset(
    {
        "none",
        "crash",
        "equivocate",
        "outside_hull",
        "random_noise",
        "coordinate_attack",
        "split_world",
        "hull_collapse",
        "adaptive_extreme",
        "theorem4_scenario",
    }
)

#: Coordinated strategies whose whole-round reports the engine computes
#: directly from the coordinator's memoised state (no per-message mutators).
#: ``theorem4_scenario`` is deliberately absent: it reduces to per-process
#: crash faults, which the generic mutator-driven path already handles.
_BATCHED_COORDINATED = frozenset({"split_world", "hull_collapse", "adaptive_extreme"})

#: Deterministic delivery schedulers whose decision sequence depends only on
#: the event structure — the property that lets restricted-async trials share
#: one recorded skeleton.  ``random`` consumes its RNG per *choice*, which is
#: still deterministic per trial, but its stream is seed-specific, so there is
#: nothing to share; more importantly its decisions are not reconstructible
#: from the structure alone once the group batches trials.
VECTORIZED_ASYNC_SCHEDULERS = frozenset({"round_robin", "lagging"})

#: Bound on the cross-round Gamma-solution memo (distinct clouds).
_MEMO_LIMIT = 200_000

# Process-lifetime caches, shared *across* execution units.  A persistent
# pool worker runs many units back to back, so choosers, decision memos and
# Gamma point memos survive from one unit to the next instead of being
# re-derived per call (the caches only ever reuse the deterministic answer —
# or re-raise the exact exception — a cold solve would produce, so rows stay
# byte-identical).  Memo keys carry the fault bound alongside the cloud
# bytes because the cached answer depends on both.
_CHOOSERS: dict[int, SafeAreaCalculator] = {}
_DECISION_MEMO: dict[tuple, np.ndarray] = {}
_POINT_MEMO: dict[tuple, "np.ndarray | None | _LoudFailure"] = {}

#: Cumulative memo-cache telemetry for this process (hits avoid a Gamma/LP
#: solve entirely; evictions count whole-cache flushes at :data:`_MEMO_LIMIT`).
#: Published into the metrics registry by delta — see ``vectorized_stats_snapshot``.
_VEC_STATS: dict[str, int] = {
    "decision_memo_hits": 0,
    "decision_memo_misses": 0,
    "point_memo_hits": 0,
    "point_memo_misses": 0,
    "memo_evictions": 0,
}


def vectorized_stats_snapshot() -> dict[str, int]:
    """Point-in-time copy of the columnar engine's memo-cache counters."""
    return dict(_VEC_STATS)


def _shared_chooser(fault_bound: int) -> SafeAreaCalculator:
    chooser = _CHOOSERS.get(fault_bound)
    if chooser is None:
        chooser = _CHOOSERS[fault_bound] = SafeAreaCalculator(fault_bound=fault_bound)
    return chooser


def _memo_key(fault_bound: int, cloud: np.ndarray) -> tuple:
    return (fault_bound, cloud.shape, cloud.tobytes())


class FallbackReason(str, Enum):
    """Why the planner routed a spec to the object engine.

    The values are plain strings so they serialise straight into summary
    rows; :func:`vectorization_fallback` maps a spec to its reason (or None
    when the columnar engine takes it).
    """

    #: The caller forced ``engine="object"``.
    FORCED_OBJECT = "forced_object"
    #: ``engine="auto"`` demoted a one-trial shape group (nothing to amortise).
    SINGLETON_GROUP = "singleton_group"
    #: The protocol/adversary combination has no faithful columnar program.
    ADVERSARY_NOT_COLUMNAR = "adversary_not_columnar"
    #: ``restricted_async`` under a scheduler with no shareable decision
    #: sequence (``random``).
    SCHEDULER_NOT_DETERMINISTIC = "scheduler_not_deterministic"
    #: The witness-based asynchronous protocol (``approx``) is never columnar.
    ASYNC_PROTOCOL_NOT_COLUMNAR = "async_protocol_not_columnar"


def vectorization_fallback(spec: TrialSpec) -> FallbackReason | None:
    """The reason the spec must run on the object engine, or None if columnar."""
    if PROTOCOLS[spec.protocol][0] == "sync":
        if spec.protocol == "restricted_sync":
            if spec.adversary in VECTORIZED_RESTRICTED_ADVERSARIES:
                return None
            return FallbackReason.ADVERSARY_NOT_COLUMNAR
        if spec.adversary == "none":
            return None
        return FallbackReason.ADVERSARY_NOT_COLUMNAR
    if spec.protocol == "restricted_async":
        if spec.adversary != "none":
            return FallbackReason.ADVERSARY_NOT_COLUMNAR
        if spec.scheduler not in VECTORIZED_ASYNC_SCHEDULERS:
            return FallbackReason.SCHEDULER_NOT_DETERMINISTIC
        return None
    return FallbackReason.ASYNC_PROTOCOL_NOT_COLUMNAR


def spec_is_vectorizable(spec: TrialSpec) -> bool:
    """True when the columnar substrate can execute the spec faithfully."""
    return vectorization_fallback(spec) is None


def vectorized_group_key(spec: TrialSpec) -> tuple:
    """The shape class one columnar batch may span.

    Trials sharing ``(protocol, n, d, f, adversary, scheduler)`` stack into
    one ``(trials, n, d)`` state array; workloads, seeds, epsilons and round
    overrides stay per-trial data inside the batch.
    """
    return (
        spec.protocol,
        spec.process_count,
        spec.dimension,
        spec.fault_bound,
        spec.adversary,
        spec.scheduler,
    )


def run_specs_vectorized(specs: Sequence[TrialSpec]) -> list[TrialResult]:
    """Execute one same-shape group of eligible specs on the columnar substrate.

    Returns one result per spec, in input order.  ``elapsed_ms`` is the
    trial's amortised share of the group's wall-clock time (timing is the one
    field determinism comparisons strip).
    """
    if not specs:
        return []
    key = vectorized_group_key(specs[0])
    for spec in specs:
        if not spec_is_vectorizable(spec):
            raise ConfigurationError(
                f"spec {spec.trial_index} ({spec.protocol}/{spec.adversary}) "
                "is not vectorizable; route it through run_trial"
            )
        if vectorized_group_key(spec) != key:
            raise ConfigurationError(
                "all specs of a columnar batch must share one shape group"
            )
    start = time.perf_counter()
    if specs[0].protocol == "restricted_sync":
        results = _run_restricted_group(specs)
    elif specs[0].protocol == "restricted_async":
        results = _run_async_group(specs)
    else:
        results = _run_broadcast_group(specs)
    elapsed_ms = (time.perf_counter() - start) * 1e3 / len(specs)
    return [dataclasses.replace(result, elapsed_ms=elapsed_ms) for result in results]


def _error_result(spec: TrialSpec, error: Exception) -> TrialResult:
    """Mirror run_trial's failure capture: failures are campaign data."""
    return TrialResult(spec=spec, status="error", error=f"{type(error).__name__}: {error}")


# ---------------------------------------------------------------------------
# Outcome verification (deduplicating mirror of core.validity)
# ---------------------------------------------------------------------------

def _verdict(
    registry: ProcessRegistry,
    decisions: dict[int, np.ndarray],
    epsilon: float | None,
) -> ValidityReport:
    """Delegate to ``check_{exact,approximate}_outcome`` on deduplicated rows.

    Both report metrics are maxima/ranges over the decision rows, so rows
    that are bitwise identical (the common case: honest processes agree)
    contribute exactly once — one representative per distinct decision gives
    the same report while the hull-distance LP runs once instead of once per
    process.
    """
    representatives: dict[bytes, int] = {}
    for process_id in sorted(decisions):
        key = np.asarray(decisions[process_id], dtype=float).tobytes()
        representatives.setdefault(key, process_id)
    reduced = {process_id: decisions[process_id] for process_id in representatives.values()}
    if epsilon is None:
        return check_exact_outcome(registry, reduced)
    return check_approximate_outcome(registry, reduced, epsilon=epsilon)


def _result_row(
    spec: TrialSpec,
    registry: ProcessRegistry,
    decisions: dict[int, np.ndarray],
    report: ValidityReport,
    rounds: int,
    messages_sent: int,
    messages_dropped: int,
    state_histories: dict[int, list[np.ndarray]] | None = None,
) -> TrialResult:
    first_honest = registry.honest_ids[0]
    return TrialResult(
        spec=spec,
        status="ok",
        agreement=report.agreement_ok,
        validity=report.validity_ok,
        max_disagreement=float(report.max_disagreement),
        max_hull_distance=float(report.max_hull_distance),
        rounds=rounds,
        deliveries=None,
        messages_sent=messages_sent,
        messages_dropped=messages_dropped,
        decision=tuple(float(x) for x in decisions[first_honest]),
        state_histories=state_histories,
    )


# ---------------------------------------------------------------------------
# Fault-free broadcast protocols (exact, coordinatewise)
# ---------------------------------------------------------------------------

def _run_broadcast_group(specs: Sequence[TrialSpec]) -> list[TrialResult]:
    """Columnar execution of fault-free ``exact`` / ``coordinatewise`` trials.

    With no active adversary, every EIG broadcast resolves to the sender's
    true value, so after Step 1 each process holds exactly the stacked input
    matrix — the decision step collapses to one deterministic reduction per
    trial, deduplicated across the identical honest processes.
    """
    protocol = specs[0].protocol
    fault_bound = specs[0].fault_bound
    chooser = _shared_chooser(fault_bound)
    results: list[TrialResult] = []
    for spec in specs:
        try:
            results.append(_execute_broadcast_trial(spec, protocol, chooser))
        except Exception as error:  # noqa: BLE001 — failures are campaign data
            results.append(_error_result(spec, error))
    if len(_DECISION_MEMO) > _MEMO_LIMIT:
        _DECISION_MEMO.clear()
        _VEC_STATS["memo_evictions"] += 1
    return results


def _execute_broadcast_trial(
    spec: TrialSpec,
    protocol: str,
    chooser: SafeAreaCalculator,
) -> TrialResult:
    registry = build_registry(spec)
    make_adversaries(spec, registry)  # adversary == "none": validation no-op
    configuration = registry.configuration
    n = configuration.process_count
    if protocol == "exact":
        check_exact_sync(configuration)
    if n < 2:
        raise ConfigurationError("a synchronous run needs at least two processes")
    total_rounds = configuration.fault_bound + 1  # EIG needs f + 1 rounds
    max_rounds = (
        spec.max_rounds_override
        if spec.max_rounds_override is not None
        else configuration.fault_bound + 2
    )
    if total_rounds > max_rounds:
        raise TerminationError(
            f"synchronous run exceeded the {max_rounds}-round budget"
        )
    # Step 1 resolution, fault-free: every process reconstructs exactly the
    # stacked nominal inputs, in process-id order.
    cloud = np.vstack([registry.input_of(process_id) for process_id in range(n)])
    if protocol == "exact":
        cloud_key = _memo_key(spec.fault_bound, cloud)
        if cloud_key not in _DECISION_MEMO:
            _VEC_STATS["decision_memo_misses"] += 1
            _DECISION_MEMO[cloud_key] = chooser.choose(cloud)
        else:
            _VEC_STATS["decision_memo_hits"] += 1
        decision = _DECISION_MEMO[cloud_key]
    else:
        decision = coordinatewise_decision(cloud)
    decisions = {
        process_id: np.asarray(decision, dtype=float) for process_id in registry.honest_ids
    }
    report = _verdict(registry, decisions, epsilon=None)
    # Every process bundles its (non-empty, fault-free) relays into one
    # message per recipient per round.
    messages_sent = total_rounds * n * (n - 1)
    return _result_row(
        spec, registry, decisions, report,
        rounds=total_rounds, messages_sent=messages_sent, messages_dropped=0,
    )


# ---------------------------------------------------------------------------
# Restricted-round synchronous protocol (independent adversaries)
# ---------------------------------------------------------------------------

@dataclass
class _LiveTrial:
    """One in-flight trial of a restricted-round columnar batch."""

    position: int  # index into the group's spec list
    spec: TrialSpec
    registry: ProcessRegistry
    mutators: dict[int, object]
    coordinator: AdversaryCoordinator | None
    total_rounds: int
    state: np.ndarray  # (n, d) — row i is process i's current state
    messages_sent: int = 0
    messages_dropped: int = 0
    histories: dict[int, list[np.ndarray]] | None = None
    failure: Exception | None = None

    def record_history(self) -> None:
        if self.histories is not None:
            for process_id, history in self.histories.items():
                history.append(self.state[process_id].copy())


def _prepare_restricted_trial(position: int, spec: TrialSpec) -> _LiveTrial:
    """Per-trial prologue, raising exactly what the object runtime would.

    The validation calls run in the object runtime's order: workload
    construction, adversary construction, resilience check, contraction /
    round-threshold computation, runtime-size check, round budget.
    """
    registry = build_registry(spec)
    bundle = make_adversaries(spec, registry)
    configuration = registry.configuration
    n = configuration.process_count
    check_restricted_sync(configuration)
    value_lower, value_upper = registry.value_bounds()
    gamma = contraction_factor(n, configuration.fault_bound, "all_subsets")
    computed_rounds = round_threshold(value_upper - value_lower, spec.epsilon, gamma)
    total_rounds = (
        spec.max_rounds_override if spec.max_rounds_override is not None else computed_rounds
    )
    if n < 2:
        raise ConfigurationError("a synchronous run needs at least two processes")
    if total_rounds < 1:
        # The object runtime would run out of its (total_rounds + 1) budget
        # before any process decides.
        raise TerminationError(
            f"synchronous run exceeded the {total_rounds + 1}-round budget"
        )
    state = np.vstack([registry.input_of(process_id) for process_id in range(n)])
    histories = None
    if spec.record_history:
        histories = {
            process_id: [state[process_id].copy()] for process_id in registry.honest_ids
        }
    return _LiveTrial(
        position=position,
        spec=spec,
        registry=registry,
        mutators=dict(bundle.mutators),
        coordinator=bundle.coordinator,
        total_rounds=total_rounds,
        state=state,
        histories=histories,
    )


def _faulty_reports(
    trial: _LiveTrial, reports: np.ndarray, round_index: int
) -> None:
    """Drive the trial's Byzantine senders through their real mutators.

    ``reports`` is the trial's ``(n, n, d)`` view tensor
    (``reports[r, s]`` = what recipient ``r`` reads from sender ``s``);
    honest rows are already broadcast in.  Mutators run on real ``Message``
    envelopes in the object runtime's (sender, recipient) order, so stateful
    strategies (crash progression, noise RNG streams) consume their state
    identically; the produced messages are routed with the runtime's drop
    rule and parsed with the process's coercion rule.
    """
    n = trial.state.shape[0]
    dimension = trial.state.shape[1]
    delivered: dict[int, list[Message]] = {}
    for sender in sorted(trial.mutators):
        mutator = trial.mutators[sender]
        # Silence is the default: a faulty sender only reaches a recipient
        # through a message that survives mutation and routing.
        for recipient in range(n):
            if recipient != sender:
                reports[recipient, sender] = 0.0
        payload_state = tuple(float(x) for x in trial.state[sender])
        for recipient in range(n):
            if recipient == sender:
                continue
            original = Message(
                sender=sender,
                recipient=recipient,
                protocol="restricted_sync_bvc",
                kind="STATE",
                payload={"state": payload_state},
                round_index=round_index,
            )
            for message in mutator.mutate(original):
                if message.recipient == message.sender or not (0 <= message.recipient < n):
                    trial.messages_dropped += 1
                    continue
                trial.messages_sent += 1
                delivered.setdefault(message.recipient, []).append(message)
    for recipient, inbox in delivered.items():
        inbox.sort(key=lambda message: (message.sender, message.sequence))
        for message in inbox:
            if message.protocol != "restricted_sync_bvc" or message.kind != "STATE":
                continue
            if not isinstance(message.payload, dict):
                continue
            vector = _coerce_state(message.payload.get("state"), dimension)
            if vector is not None:
                reports[recipient, message.sender] = vector


def _coerce_state(value: object, dimension: int) -> np.ndarray | None:
    """Mirror of ``RestrictedSyncProcess._coerce_state``."""
    try:
        vector = np.asarray(value, dtype=float).reshape(-1)
    except (TypeError, ValueError):
        return None
    if vector.shape != (dimension,) or not np.all(np.isfinite(vector)):
        return None
    return vector


def _coordinated_reports(
    trial: _LiveTrial, reports: np.ndarray, round_index: int
) -> None:
    """Emit the whole coalition's round reports from the coordinator's memos.

    The three batched coordinated strategies choose one report *point* per
    recipient per round, all faulty senders alike, so instead of driving
    ``n - 1`` mutators per faulty sender the engine asks the shared
    :class:`AdversaryCoordinator` for the points directly.  The accessors hit
    the same memoised decisions the per-message mutators would, and for
    ``adaptive_extreme`` the honest traffic sightings are fed in the object
    runtime's exact observation order (senders in id order, ``n - 1``
    messages each, the aim memoised at the first faulty sender's turn) — so
    the batched round is bit-for-bit the message-by-message round.
    """
    coordinator = trial.coordinator
    n = trial.state.shape[0]
    faulty = sorted(trial.mutators)
    # Silence is the default, exactly as in the mutator-driven path: a report
    # survives only if its point parses like a routed message would.
    for sender in faulty:
        for recipient in range(n):
            if recipient != sender:
                reports[recipient, sender] = 0.0
    if coordinator.strategy == "adaptive_extreme":
        # Observation order of the object runtime's collect phase: honest
        # senders with ids below the first faulty sender are routed (and
        # sighted) before the coalition plans; the rest are sighted after the
        # aim is memoised and only matter for later rounds' fallback buckets.
        first_faulty = faulty[0]
        honest_ids = sorted(trial.registry.honest_ids)
        for process_id in honest_ids:
            if process_id < first_faulty:
                for _ in range(n - 1):
                    coordinator.observe_value(round_index, trial.state[process_id])
        aim = coordinator.adaptive_aim(round_index)
        for process_id in honest_ids:
            if process_id > first_faulty:
                for _ in range(n - 1):
                    coordinator.observe_value(round_index, trial.state[process_id])
        points: Mapping[int, np.ndarray] = {recipient: aim for recipient in range(n)}
    elif coordinator.strategy == "hull_collapse":
        point = coordinator.collapse_point()
        points = {recipient: point for recipient in range(n)}
    else:  # split_world
        points = coordinator.camp_values()
    trial.messages_sent += len(faulty) * (n - 1)
    for recipient in range(n):
        point = points.get(recipient)
        if point is None or not np.all(np.isfinite(point)):
            # A non-finite report fails the recipient's state coercion and is
            # silently ignored — the zero default stands (same as the object
            # runtime's parse rejection).
            continue
        for sender in faulty:
            if recipient != sender:
                reports[recipient, sender] = point


def _seed_collapse_points(trials: list[_LiveTrial], fault_bound: int) -> None:
    """One batched kernel pass for every hull_collapse trial lacking a target.

    ``points_multi`` (unfused) answers each distinct honest cloud through the
    exact single-query program ``AdversaryCoordinator`` would run lazily, so
    pre-seeding never changes a target bitwise; if the batched pass fails for
    any reason, seeding is skipped and the lazy per-trial path keeps its
    exact error attribution.
    """
    pending = [
        trial
        for trial in trials
        if trial.coordinator is not None
        and trial.coordinator.params.get("target") is None
    ]
    if not pending:
        return
    clouds = [trial.coordinator.honest_cloud for trial in pending]
    try:
        answers = default_kernel.points_multi(clouds, fault_bound)
    except Exception:  # noqa: BLE001 — lazy path keeps error attribution
        return
    for trial, answer in zip(pending, answers):
        point = (
            answer
            if answer is not None
            else trial.coordinator.honest_cloud.mean(axis=0)
        )
        trial.coordinator.seed_collapse_point(point)


def _run_restricted_group(specs: Sequence[TrialSpec]) -> list[TrialResult]:
    """Columnar execution of a restricted-round synchronous trial batch."""
    n = specs[0].process_count
    dimension = specs[0].dimension
    fault_bound = specs[0].fault_bound
    quorum = n - fault_bound
    chooser = _shared_chooser(fault_bound)

    results: dict[int, TrialResult] = {}
    live: list[_LiveTrial] = []
    for position, spec in enumerate(specs):
        try:
            live.append(_prepare_restricted_trial(position, spec))
        except Exception as error:  # noqa: BLE001 — failures are campaign data
            results[position] = _error_result(spec, error)
    if specs[0].adversary == "hull_collapse":
        _seed_collapse_points(live, fault_bound)

    round_index = 0
    while live:
        round_index += 1
        active = [trial for trial in live if trial.failure is None]
        # 1. Columnar report tensors: honest senders are one array broadcast.
        tensors: list[np.ndarray] = []
        for trial in active:
            reports = np.broadcast_to(
                trial.state[None, :, :], (n, n, dimension)
            ).copy()
            honest_senders = n - len(trial.mutators)
            trial.messages_sent += honest_senders * (n - 1)
            try:
                if (
                    trial.coordinator is not None
                    and trial.spec.adversary in _BATCHED_COORDINATED
                ):
                    _coordinated_reports(trial, reports, round_index)
                else:
                    _faulty_reports(trial, reports, round_index)
            except Exception as error:  # noqa: BLE001
                trial.failure = error
            tensors.append(reports)

        # 2. One multi-instance kernel pass for every Gamma query of the round.
        view_updates = _round_view_updates(
            [
                (trial, tensor)
                for trial, tensor in zip(active, tensors)
                if trial.failure is None
            ],
            quorum,
            fault_bound,
            dimension,
            chooser,
        )

        # 3. Apply updates, record histories, retire finished/failed trials.
        still_live: list[_LiveTrial] = []
        for trial, tensor in zip(active, tensors):
            if trial.failure is None:
                new_state = np.empty_like(trial.state)
                for recipient in range(n):
                    update = view_updates.get(tensor[recipient].tobytes())
                    if isinstance(update, Exception):
                        trial.failure = update
                        break
                    new_state[recipient] = update
                else:
                    trial.state = new_state
                    trial.record_history()
            if trial.failure is not None:
                results[trial.position] = _error_result(trial.spec, trial.failure)
                continue
            if round_index >= trial.total_rounds:
                results[trial.position] = _finish_restricted_trial(trial)
            else:
                still_live.append(trial)
        live = still_live
        if len(_POINT_MEMO) > _MEMO_LIMIT:
            _POINT_MEMO.clear()
            _VEC_STATS["memo_evictions"] += 1

    return [results[position] for position in range(len(specs))]


def _round_view_updates(
    active: list[tuple[_LiveTrial, np.ndarray]],
    quorum: int,
    fault_bound: int,
    dimension: int,
    chooser: SafeAreaCalculator,
) -> dict[bytes, np.ndarray | Exception]:
    """Compute the state update for every distinct receive view of the round.

    Views are deduplicated bitwise across processes *and* trials; each
    distinct view's Gamma queries are pushed through one
    :meth:`GammaKernel.points_multi` pass (which dedupes clouds again and
    solves each distinct cloud with the exact single-query program).  An
    empty safe area maps the view to the same :class:`EmptyIntersectionError`
    the per-process chooser raises.
    """
    views: dict[bytes, np.ndarray] = {}
    for _, tensor in active:
        for view in tensor:
            key = view.tobytes()
            if key not in views:
                views[key] = view.copy()
    view_clouds: dict[bytes, list[np.ndarray]] = {
        key: restricted_round_clouds(view, quorum) for key, view in views.items()
    }

    pending: dict[tuple, np.ndarray] = {}
    for clouds in view_clouds.values():
        for cloud in clouds:
            cloud_key = _memo_key(fault_bound, cloud)
            if cloud_key in _POINT_MEMO:
                _VEC_STATS["point_memo_hits"] += 1
            elif cloud_key not in pending:
                _VEC_STATS["point_memo_misses"] += 1
                pending[cloud_key] = cloud
    if pending:
        try:
            answers = chooser.resolve_multi(list(pending.values()))
            _POINT_MEMO.update(zip(pending.keys(), answers))
        except Exception:  # noqa: BLE001 — re-solve per query for attribution
            for cloud_key, cloud in pending.items():
                try:
                    _POINT_MEMO[cloud_key] = chooser.choose(cloud)
                except EmptyIntersectionError:
                    _POINT_MEMO[cloud_key] = None
                except Exception as error:  # noqa: BLE001
                    _POINT_MEMO[cloud_key] = _LoudFailure(error)

    updates: dict[bytes, np.ndarray | Exception] = {}
    for key, clouds in view_clouds.items():
        chosen: list[np.ndarray] = []
        failure: Exception | None = None
        for cloud in clouds:
            answer = _POINT_MEMO[_memo_key(fault_bound, cloud)]
            if isinstance(answer, _LoudFailure):
                failure = answer.error
                break
            if answer is None:
                # Same message SafeAreaCalculator.choose raises per query.
                failure = EmptyIntersectionError(
                    f"Gamma is empty for |Y|={quorum}, f={fault_bound}, d={dimension}"
                )
                break
            chosen.append(answer)
        updates[key] = failure if failure is not None else restricted_round_reduce(chosen)
    return updates


class _LoudFailure:
    """A non-emptiness solver failure memoised for faithful re-raising."""

    def __init__(self, error: Exception) -> None:
        self.error = error


def _finish_restricted_trial(trial: _LiveTrial) -> TrialResult:
    registry = trial.registry
    decisions = {
        process_id: np.asarray(trial.state[process_id], dtype=float)
        for process_id in registry.honest_ids
    }
    try:
        report = _verdict(registry, decisions, epsilon=trial.spec.epsilon)
    except Exception as error:  # noqa: BLE001 — failures are campaign data
        return _error_result(trial.spec, error)
    return _result_row(
        trial.spec,
        registry,
        decisions,
        report,
        rounds=trial.total_rounds,
        messages_sent=trial.messages_sent,
        messages_dropped=trial.messages_dropped,
        state_histories=trial.histories if trial.spec.record_history else None,
    )


# ---------------------------------------------------------------------------
# Restricted-round asynchronous protocol (deterministic schedulers)
# ---------------------------------------------------------------------------
#
# A restricted-async execution's *event structure* — which (process, round)
# aggregates which senders' states, in which chronological order, and how
# many messages hit the network — is a pure function of the configuration and
# the scheduler decision sequence.  The state values never feed back into it:
# honest payload states are always finite ``(d,)`` vectors, so every receive
# filter (`_coerce_state`, round tags, first-per-sender) resolves identically
# whatever the values are, and the deterministic schedulers read only the
# busy-channel structure (plus, for ``lagging``, a values-blind RNG stream
# seeded per trial).  The engine therefore records the structure once per
# scheduler signature by running the *real* runtime with value-free recorder
# cores, and replays each trial's actual inputs through the recorded event
# list with the real aggregator — identical clouds, identical ``Gamma``
# choices, identical first exception, byte-identical rows.

@dataclass
class _AsyncSkeleton:
    """The value-free structure shared by every trial of one signature.

    ``events`` is the chronological aggregate log: one ``(process, round,
    members)`` entry per completed state update, where ``members`` are the
    sender ids (self included) whose round states fed the update.
    """

    events: list[tuple[int, int, tuple[int, ...]]]
    messages_sent: int
    messages_dropped: int


class _RecordingAggregator:
    """Aggregator stand-in that logs events and returns a placeholder state."""

    def __init__(self, core: RestrictedAsyncProcess, events: list) -> None:
        self._core = core
        self._events = events
        self._zero = np.zeros(core.configuration.dimension)

    def aggregate(self, vectors: Mapping[int, np.ndarray]) -> AggregationStep:
        self._events.append(
            (self._core.process_id, self._core._current_round, tuple(sorted(vectors)))
        )
        return AggregationStep(
            new_state=self._zero.copy(), subset_count=0, chosen_points=()
        )


class _MemoChooser:
    """Bitwise-memoising wrapper over a ``SafeAreaCalculator`` (async replay).

    ``choose`` is deterministic per cloud, so the memo only ever reuses the
    answer — or re-raises the exception — the wrapped chooser produced for a
    bitwise-identical cloud.
    """

    def __init__(self, chooser: SafeAreaCalculator, memo: dict) -> None:
        self._chooser = chooser
        self._memo = memo

    def choose(self, multiset: PointMultiset) -> np.ndarray:
        key = (multiset.cloud.shape, multiset.cloud.tobytes())
        cached = self._memo.get(key)
        if cached is None:
            try:
                cached = self._chooser.choose(multiset)
            except Exception as error:  # noqa: BLE001 — deterministic re-raise
                cached = error
            self._memo[key] = cached
        if isinstance(cached, Exception):
            raise cached
        return cached


def _run_async_group(specs: Sequence[TrialSpec]) -> list[TrialResult]:
    """Columnar execution of a deterministic-scheduler restricted-async batch."""
    results: dict[int, TrialResult] = {}
    skeletons: dict[tuple, _AsyncSkeleton | Exception] = {}
    choose_memo: dict[tuple, np.ndarray | Exception] = {}
    for position, spec in enumerate(specs):
        try:
            results[position] = _execute_async_trial(spec, skeletons, choose_memo)
        except Exception as error:  # noqa: BLE001 — failures are campaign data
            results[position] = _error_result(spec, error)
        if len(choose_memo) > _MEMO_LIMIT:
            choose_memo.clear()
    return [results[position] for position in range(len(specs))]


def _execute_async_trial(
    spec: TrialSpec,
    skeletons: dict[tuple, "_AsyncSkeleton | Exception"],
    choose_memo: dict,
) -> TrialResult:
    """One restricted-async trial: shared skeleton, per-trial value replay.

    The prologue runs the object runtime's validation calls in its exact
    order (workload, adversary, scheduler, process construction, runtime
    size), so error rows raise identically.
    """
    registry = build_registry(spec)
    make_adversaries(spec, registry)  # adversary == "none": validation no-op
    scheduler = build_scheduler(spec, registry)
    configuration = registry.configuration
    value_lower, value_upper = registry.value_bounds()
    cores: dict[int, RestrictedAsyncProcess] = {}
    for process_id in registry.process_ids:
        cores[process_id] = RestrictedAsyncProcess(
            process_id=process_id,
            configuration=configuration,
            input_vector=registry.input_of(process_id),
            epsilon=spec.epsilon,
            value_lower=value_lower,
            value_upper=value_upper,
            max_rounds_override=spec.max_rounds_override,
        )
    if len(cores) < 2:
        # RuntimeCore's size check, raised with its exact message.
        raise ConfigurationError("a asynchronous run needs at least two processes")
    total_rounds = max(cores[pid].total_rounds for pid in registry.honest_ids)

    if spec.scheduler == "round_robin":
        scheduler_signature: tuple = ("round_robin",)
    else:  # lagging: the RNG stream is seed- and slow-set-specific
        _, _, scheduler_seed = spec.resolved_seeds()
        scheduler_signature = (
            "lagging",
            scheduler_seed,
            tuple(sorted(scheduler.slow_processes)),
        )
    key = (
        tuple(registry.process_ids),
        tuple(sorted(registry.faulty_ids)),
        total_rounds,
        scheduler_signature,
    )
    skeleton = skeletons.get(key)
    if skeleton is None:
        try:
            skeleton = _async_skeleton(registry, scheduler, total_rounds)
        except (TerminationError, ConfigurationError) as error:
            skeleton = error
        skeletons[key] = skeleton
    if isinstance(skeleton, Exception):
        raise skeleton

    fault_bound = configuration.fault_bound
    quorum = max(1, configuration.process_count - 3 * fault_bound)
    aggregator = SafeAverageAggregator(fault_bound, quorum)
    aggregator._chooser = _MemoChooser(aggregator._chooser, choose_memo)
    states: dict[int, list[np.ndarray]] = {
        process_id: [np.asarray(registry.input_of(process_id), dtype=float)]
        for process_id in registry.process_ids
    }
    for process_id, round_index, members in skeleton.events:
        # Sender ``m``'s round-``r`` payload carries its state after ``r - 1``
        # updates; the recorded chronology guarantees that state exists.
        collected = {
            member: (
                states[process_id][round_index - 1].copy()
                if member == process_id
                else states[member][round_index - 1]
            )
            for member in members
        }
        step = aggregator.aggregate(collected)
        states[process_id].append(step.new_state)

    # The decision is the state after the *last* aggregate, which is round
    # ``total_rounds`` on every normal run but round 1 under a zero-round
    # override (a process only checks its budget after finishing a round).
    decisions = {
        process_id: np.asarray(states[process_id][-1], dtype=float)
        for process_id in registry.honest_ids
    }
    report = _verdict(registry, decisions, epsilon=spec.epsilon)
    return _result_row(
        spec,
        registry,
        decisions,
        report,
        rounds=total_rounds,
        messages_sent=skeleton.messages_sent,
        messages_dropped=skeleton.messages_dropped,
        state_histories=(
            {process_id: states[process_id] for process_id in registry.honest_ids}
            if spec.record_history
            else None
        ),
    )


def _async_skeleton(
    registry: ProcessRegistry,
    scheduler: object,
    total_rounds: int,
) -> _AsyncSkeleton:
    """Record one scheduler signature's event structure with the real runtime.

    The recorder cores are real :class:`RestrictedAsyncProcess` objects with
    zero inputs and their aggregator swapped for the event logger, driven by
    the real :class:`AsynchronousRuntime` and the real scheduler — so the
    delivery order, traffic counters and any :class:`TerminationError`
    (budget, quiescence) are exactly the object runtime's.
    """
    configuration = registry.configuration
    events: list[tuple[int, int, tuple[int, ...]]] = []
    zero = np.zeros(configuration.dimension)
    processes: dict[int, RestrictedAsyncProcess] = {}
    for process_id in registry.process_ids:
        core = RestrictedAsyncProcess(
            process_id=process_id,
            configuration=configuration,
            input_vector=zero,
            epsilon=1.0,
            value_lower=0.0,
            value_upper=0.0,
            max_rounds_override=total_rounds,
        )
        core._aggregator = _RecordingAggregator(core, events)
        processes[process_id] = core
    runtime = AsynchronousRuntime(
        processes,
        honest_ids=registry.honest_ids,
        scheduler=scheduler,
    )
    result = runtime.run()
    return _AsyncSkeleton(
        events=events,
        messages_sent=result.traffic.messages_sent,
        messages_dropped=result.traffic.messages_dropped,
    )


def _register_vectorized_metrics() -> None:
    """Publish the memo-cache counters into the process metrics registry."""
    from repro.obs.registry import CounterSync, get_registry

    registry = get_registry()
    events = registry.counter(
        "repro_vectorized_events_total",
        "Columnar engine memo-cache events (hits, misses, evictions) by kind.",
        labelnames=("kind",),
    )
    registry.register_collector(CounterSync(events, vectorized_stats_snapshot))
    sizes = registry.gauge(
        "repro_vectorized_memo_size",
        "Entries currently held by the cross-round memo caches.",
        labelnames=("cache",),
    )
    registry.register_collector(
        lambda: (
            sizes.labels(cache="decision").set(len(_DECISION_MEMO)),
            sizes.labels(cache="point").set(len(_POINT_MEMO)),
        )
    )


_register_vectorized_metrics()
