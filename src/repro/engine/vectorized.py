"""Columnar vectorized execution substrate for synchronous campaign batches.

The object runtime (:func:`~repro.engine.trial.run_trial`) simulates every
trial as per-process Python objects exchanging per-round ``Message`` objects.
That is the right oracle — it is the literal paper model — but for the
lock-step synchronous protocols it spends most of its time re-deriving work
that is *identical across processes and trials*: every honest process of a
fault-free restricted-round trial holds the same receive matrix, enumerates
the same subset families and solves the same ``Gamma`` programs.

This module executes whole same-shape groups of trials as array programs:

* honest state lives in ``(trials, n, d)`` NumPy arrays; honest "messages"
  are array broadcasts (``reports[t, r, s] = state[t, s]``), not objects;
* Byzantine senders are driven through the *actual* independent-strategy
  mutator objects (built by :func:`~repro.engine.factories.make_adversaries`)
  on real ``Message`` envelopes, in the object runtime's exact
  ``(round, sender, recipient)`` order — so every corruption, RNG draw and
  drop is bit-for-bit the one the object runtime would produce;
* all ``Gamma`` queries of a round — across every process of every trial in
  the batch — are answered by one
  :meth:`~repro.geometry.kernel.GammaKernel.points_multi` pass, which dedupes
  bitwise-identical clouds and solves each distinct cloud through the same
  cached-template program a single :meth:`point` call would use;
* the state transitions themselves are the pure functions of
  :mod:`repro.core.round_ops`, shared with the per-process classes.

Because deduplication and memoisation only ever *reuse* the result of the
deterministic solve the object runtime would perform, the emitted
:class:`~repro.engine.spec.TrialResult` rows are byte-identical to the object
engine's (modulo the ``elapsed_ms`` timing field) — including error rows,
which re-raise through the same validation calls in the same order.

Eligibility (everything else must fall back to ``run_trial``):

* synchronous protocols only (``exact``, ``coordinatewise``,
  ``restricted_sync``); the asynchronous protocols' outcomes depend on
  scheduler-chosen delivery interleavings that have no columnar equivalent;
* ``restricted_sync`` supports every *independent* adversary strategy (its
  round messages are plain state reports the mutators act on directly);
* ``exact`` and ``coordinatewise`` are supported fault-free
  (``adversary == "none"``): their round traffic is EIG relay trees, which
  the columnar substrate collapses to the known fault-free resolution —
  under an active adversary that shortcut would not be faithful;
* coordinated (whole-coalition) adversaries need the full-information
  traffic tap of the object runtime and always fall back.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.approx_bvc import contraction_factor, round_threshold
from repro.core.conditions import check_exact_sync, check_restricted_sync
from repro.core.round_ops import (
    coordinatewise_decision,
    restricted_round_clouds,
    restricted_round_reduce,
)
from repro.core.safe_area import SafeAreaCalculator
from repro.core.validity import (
    ValidityReport,
    check_approximate_outcome,
    check_exact_outcome,
)
from repro.engine.factories import build_registry, make_adversaries
from repro.engine.spec import PROTOCOLS, TrialResult, TrialSpec
from repro.exceptions import (
    ConfigurationError,
    EmptyIntersectionError,
    TerminationError,
)
from repro.network.message import Message
from repro.processes.registry import ProcessRegistry

__all__ = [
    "VECTORIZED_RESTRICTED_ADVERSARIES",
    "spec_is_vectorizable",
    "vectorized_group_key",
    "run_specs_vectorized",
]

#: Independent adversary strategies the restricted-round columnar path drives
#: faithfully (through the real mutator objects, in object-runtime order).
VECTORIZED_RESTRICTED_ADVERSARIES = frozenset(
    {"none", "crash", "equivocate", "outside_hull", "random_noise", "coordinate_attack"}
)

#: Bound on the cross-round Gamma-solution memo (distinct clouds) per group.
_MEMO_LIMIT = 200_000


def spec_is_vectorizable(spec: TrialSpec) -> bool:
    """True when the columnar substrate can execute the spec faithfully."""
    if PROTOCOLS[spec.protocol][0] != "sync":
        return False
    if spec.protocol == "restricted_sync":
        return spec.adversary in VECTORIZED_RESTRICTED_ADVERSARIES
    return spec.adversary == "none"


def vectorized_group_key(spec: TrialSpec) -> tuple:
    """The shape class one columnar batch may span.

    Trials sharing ``(protocol, n, d, f, adversary, scheduler)`` stack into
    one ``(trials, n, d)`` state array; workloads, seeds, epsilons and round
    overrides stay per-trial data inside the batch.
    """
    return (
        spec.protocol,
        spec.process_count,
        spec.dimension,
        spec.fault_bound,
        spec.adversary,
        spec.scheduler,
    )


def run_specs_vectorized(specs: Sequence[TrialSpec]) -> list[TrialResult]:
    """Execute one same-shape group of eligible specs on the columnar substrate.

    Returns one result per spec, in input order.  ``elapsed_ms`` is the
    trial's amortised share of the group's wall-clock time (timing is the one
    field determinism comparisons strip).
    """
    if not specs:
        return []
    key = vectorized_group_key(specs[0])
    for spec in specs:
        if not spec_is_vectorizable(spec):
            raise ConfigurationError(
                f"spec {spec.trial_index} ({spec.protocol}/{spec.adversary}) "
                "is not vectorizable; route it through run_trial"
            )
        if vectorized_group_key(spec) != key:
            raise ConfigurationError(
                "all specs of a columnar batch must share one shape group"
            )
    start = time.perf_counter()
    if specs[0].protocol == "restricted_sync":
        results = _run_restricted_group(specs)
    else:
        results = _run_broadcast_group(specs)
    elapsed_ms = (time.perf_counter() - start) * 1e3 / len(specs)
    return [dataclasses.replace(result, elapsed_ms=elapsed_ms) for result in results]


def _error_result(spec: TrialSpec, error: Exception) -> TrialResult:
    """Mirror run_trial's failure capture: failures are campaign data."""
    return TrialResult(spec=spec, status="error", error=f"{type(error).__name__}: {error}")


# ---------------------------------------------------------------------------
# Outcome verification (deduplicating mirror of core.validity)
# ---------------------------------------------------------------------------

def _verdict(
    registry: ProcessRegistry,
    decisions: dict[int, np.ndarray],
    epsilon: float | None,
) -> ValidityReport:
    """Delegate to ``check_{exact,approximate}_outcome`` on deduplicated rows.

    Both report metrics are maxima/ranges over the decision rows, so rows
    that are bitwise identical (the common case: honest processes agree)
    contribute exactly once — one representative per distinct decision gives
    the same report while the hull-distance LP runs once instead of once per
    process.
    """
    representatives: dict[bytes, int] = {}
    for process_id in sorted(decisions):
        key = np.asarray(decisions[process_id], dtype=float).tobytes()
        representatives.setdefault(key, process_id)
    reduced = {process_id: decisions[process_id] for process_id in representatives.values()}
    if epsilon is None:
        return check_exact_outcome(registry, reduced)
    return check_approximate_outcome(registry, reduced, epsilon=epsilon)


def _result_row(
    spec: TrialSpec,
    registry: ProcessRegistry,
    decisions: dict[int, np.ndarray],
    report: ValidityReport,
    rounds: int,
    messages_sent: int,
    messages_dropped: int,
    state_histories: dict[int, list[np.ndarray]] | None = None,
) -> TrialResult:
    first_honest = registry.honest_ids[0]
    return TrialResult(
        spec=spec,
        status="ok",
        agreement=report.agreement_ok,
        validity=report.validity_ok,
        max_disagreement=float(report.max_disagreement),
        max_hull_distance=float(report.max_hull_distance),
        rounds=rounds,
        deliveries=None,
        messages_sent=messages_sent,
        messages_dropped=messages_dropped,
        decision=tuple(float(x) for x in decisions[first_honest]),
        state_histories=state_histories,
    )


# ---------------------------------------------------------------------------
# Fault-free broadcast protocols (exact, coordinatewise)
# ---------------------------------------------------------------------------

def _run_broadcast_group(specs: Sequence[TrialSpec]) -> list[TrialResult]:
    """Columnar execution of fault-free ``exact`` / ``coordinatewise`` trials.

    With no active adversary, every EIG broadcast resolves to the sender's
    true value, so after Step 1 each process holds exactly the stacked input
    matrix — the decision step collapses to one deterministic reduction per
    trial, deduplicated across the identical honest processes.
    """
    protocol = specs[0].protocol
    fault_bound = specs[0].fault_bound
    chooser = SafeAreaCalculator(fault_bound=fault_bound)
    decision_memo: dict[bytes, np.ndarray] = {}
    results: list[TrialResult] = []
    for spec in specs:
        try:
            results.append(_execute_broadcast_trial(spec, protocol, chooser, decision_memo))
        except Exception as error:  # noqa: BLE001 — failures are campaign data
            results.append(_error_result(spec, error))
    return results


def _execute_broadcast_trial(
    spec: TrialSpec,
    protocol: str,
    chooser: SafeAreaCalculator,
    decision_memo: dict[bytes, np.ndarray],
) -> TrialResult:
    registry = build_registry(spec)
    make_adversaries(spec, registry)  # adversary == "none": validation no-op
    configuration = registry.configuration
    n = configuration.process_count
    if protocol == "exact":
        check_exact_sync(configuration)
    if n < 2:
        raise ConfigurationError("a synchronous run needs at least two processes")
    total_rounds = configuration.fault_bound + 1  # EIG needs f + 1 rounds
    max_rounds = (
        spec.max_rounds_override
        if spec.max_rounds_override is not None
        else configuration.fault_bound + 2
    )
    if total_rounds > max_rounds:
        raise TerminationError(
            f"synchronous run exceeded the {max_rounds}-round budget"
        )
    # Step 1 resolution, fault-free: every process reconstructs exactly the
    # stacked nominal inputs, in process-id order.
    cloud = np.vstack([registry.input_of(process_id) for process_id in range(n)])
    if protocol == "exact":
        cloud_key = cloud.tobytes()
        if cloud_key not in decision_memo:
            decision_memo[cloud_key] = chooser.choose(cloud)
        decision = decision_memo[cloud_key]
    else:
        decision = coordinatewise_decision(cloud)
    decisions = {
        process_id: np.asarray(decision, dtype=float) for process_id in registry.honest_ids
    }
    report = _verdict(registry, decisions, epsilon=None)
    # Every process bundles its (non-empty, fault-free) relays into one
    # message per recipient per round.
    messages_sent = total_rounds * n * (n - 1)
    return _result_row(
        spec, registry, decisions, report,
        rounds=total_rounds, messages_sent=messages_sent, messages_dropped=0,
    )


# ---------------------------------------------------------------------------
# Restricted-round synchronous protocol (independent adversaries)
# ---------------------------------------------------------------------------

@dataclass
class _LiveTrial:
    """One in-flight trial of a restricted-round columnar batch."""

    position: int  # index into the group's spec list
    spec: TrialSpec
    registry: ProcessRegistry
    mutators: dict[int, object]
    total_rounds: int
    state: np.ndarray  # (n, d) — row i is process i's current state
    messages_sent: int = 0
    messages_dropped: int = 0
    histories: dict[int, list[np.ndarray]] | None = None
    failure: Exception | None = None

    def record_history(self) -> None:
        if self.histories is not None:
            for process_id, history in self.histories.items():
                history.append(self.state[process_id].copy())


def _prepare_restricted_trial(position: int, spec: TrialSpec) -> _LiveTrial:
    """Per-trial prologue, raising exactly what the object runtime would.

    The validation calls run in the object runtime's order: workload
    construction, adversary construction, resilience check, contraction /
    round-threshold computation, runtime-size check, round budget.
    """
    registry = build_registry(spec)
    bundle = make_adversaries(spec, registry)
    configuration = registry.configuration
    n = configuration.process_count
    check_restricted_sync(configuration)
    value_lower, value_upper = registry.value_bounds()
    gamma = contraction_factor(n, configuration.fault_bound, "all_subsets")
    computed_rounds = round_threshold(value_upper - value_lower, spec.epsilon, gamma)
    total_rounds = (
        spec.max_rounds_override if spec.max_rounds_override is not None else computed_rounds
    )
    if n < 2:
        raise ConfigurationError("a synchronous run needs at least two processes")
    if total_rounds < 1:
        # The object runtime would run out of its (total_rounds + 1) budget
        # before any process decides.
        raise TerminationError(
            f"synchronous run exceeded the {total_rounds + 1}-round budget"
        )
    state = np.vstack([registry.input_of(process_id) for process_id in range(n)])
    histories = None
    if spec.record_history:
        histories = {
            process_id: [state[process_id].copy()] for process_id in registry.honest_ids
        }
    return _LiveTrial(
        position=position,
        spec=spec,
        registry=registry,
        mutators=dict(bundle.mutators),
        total_rounds=total_rounds,
        state=state,
        histories=histories,
    )


def _faulty_reports(
    trial: _LiveTrial, reports: np.ndarray, round_index: int
) -> None:
    """Drive the trial's Byzantine senders through their real mutators.

    ``reports`` is the trial's ``(n, n, d)`` view tensor
    (``reports[r, s]`` = what recipient ``r`` reads from sender ``s``);
    honest rows are already broadcast in.  Mutators run on real ``Message``
    envelopes in the object runtime's (sender, recipient) order, so stateful
    strategies (crash progression, noise RNG streams) consume their state
    identically; the produced messages are routed with the runtime's drop
    rule and parsed with the process's coercion rule.
    """
    n = trial.state.shape[0]
    dimension = trial.state.shape[1]
    delivered: dict[int, list[Message]] = {}
    for sender in sorted(trial.mutators):
        mutator = trial.mutators[sender]
        # Silence is the default: a faulty sender only reaches a recipient
        # through a message that survives mutation and routing.
        for recipient in range(n):
            if recipient != sender:
                reports[recipient, sender] = 0.0
        payload_state = tuple(float(x) for x in trial.state[sender])
        for recipient in range(n):
            if recipient == sender:
                continue
            original = Message(
                sender=sender,
                recipient=recipient,
                protocol="restricted_sync_bvc",
                kind="STATE",
                payload={"state": payload_state},
                round_index=round_index,
            )
            for message in mutator.mutate(original):
                if message.recipient == message.sender or not (0 <= message.recipient < n):
                    trial.messages_dropped += 1
                    continue
                trial.messages_sent += 1
                delivered.setdefault(message.recipient, []).append(message)
    for recipient, inbox in delivered.items():
        inbox.sort(key=lambda message: (message.sender, message.sequence))
        for message in inbox:
            if message.protocol != "restricted_sync_bvc" or message.kind != "STATE":
                continue
            if not isinstance(message.payload, dict):
                continue
            vector = _coerce_state(message.payload.get("state"), dimension)
            if vector is not None:
                reports[recipient, message.sender] = vector


def _coerce_state(value: object, dimension: int) -> np.ndarray | None:
    """Mirror of ``RestrictedSyncProcess._coerce_state``."""
    try:
        vector = np.asarray(value, dtype=float).reshape(-1)
    except (TypeError, ValueError):
        return None
    if vector.shape != (dimension,) or not np.all(np.isfinite(vector)):
        return None
    return vector


def _run_restricted_group(specs: Sequence[TrialSpec]) -> list[TrialResult]:
    """Columnar execution of a restricted-round synchronous trial batch."""
    n = specs[0].process_count
    dimension = specs[0].dimension
    fault_bound = specs[0].fault_bound
    quorum = n - fault_bound
    chooser = SafeAreaCalculator(fault_bound=fault_bound)

    results: dict[int, TrialResult] = {}
    live: list[_LiveTrial] = []
    for position, spec in enumerate(specs):
        try:
            live.append(_prepare_restricted_trial(position, spec))
        except Exception as error:  # noqa: BLE001 — failures are campaign data
            results[position] = _error_result(spec, error)

    point_memo: dict[bytes, np.ndarray | None] = {}
    round_index = 0
    while live:
        round_index += 1
        active = [trial for trial in live if trial.failure is None]
        # 1. Columnar report tensors: honest senders are one array broadcast.
        tensors: list[np.ndarray] = []
        for trial in active:
            reports = np.broadcast_to(
                trial.state[None, :, :], (n, n, dimension)
            ).copy()
            honest_senders = n - len(trial.mutators)
            trial.messages_sent += honest_senders * (n - 1)
            try:
                _faulty_reports(trial, reports, round_index)
            except Exception as error:  # noqa: BLE001
                trial.failure = error
            tensors.append(reports)

        # 2. One multi-instance kernel pass for every Gamma query of the round.
        view_updates = _round_view_updates(
            [
                (trial, tensor)
                for trial, tensor in zip(active, tensors)
                if trial.failure is None
            ],
            quorum,
            fault_bound,
            dimension,
            chooser,
            point_memo,
        )

        # 3. Apply updates, record histories, retire finished/failed trials.
        still_live: list[_LiveTrial] = []
        for trial, tensor in zip(active, tensors):
            if trial.failure is None:
                new_state = np.empty_like(trial.state)
                for recipient in range(n):
                    update = view_updates.get(tensor[recipient].tobytes())
                    if isinstance(update, Exception):
                        trial.failure = update
                        break
                    new_state[recipient] = update
                else:
                    trial.state = new_state
                    trial.record_history()
            if trial.failure is not None:
                results[trial.position] = _error_result(trial.spec, trial.failure)
                continue
            if round_index >= trial.total_rounds:
                results[trial.position] = _finish_restricted_trial(trial)
            else:
                still_live.append(trial)
        live = still_live
        if len(point_memo) > _MEMO_LIMIT:
            point_memo.clear()

    return [results[position] for position in range(len(specs))]


def _round_view_updates(
    active: list[tuple[_LiveTrial, np.ndarray]],
    quorum: int,
    fault_bound: int,
    dimension: int,
    chooser: SafeAreaCalculator,
    point_memo: dict[bytes, np.ndarray | None],
) -> dict[bytes, np.ndarray | Exception]:
    """Compute the state update for every distinct receive view of the round.

    Views are deduplicated bitwise across processes *and* trials; each
    distinct view's Gamma queries are pushed through one
    :meth:`GammaKernel.points_multi` pass (which dedupes clouds again and
    solves each distinct cloud with the exact single-query program).  An
    empty safe area maps the view to the same :class:`EmptyIntersectionError`
    the per-process chooser raises.
    """
    views: dict[bytes, np.ndarray] = {}
    for _, tensor in active:
        for view in tensor:
            key = view.tobytes()
            if key not in views:
                views[key] = view.copy()
    view_clouds: dict[bytes, list[np.ndarray]] = {
        key: restricted_round_clouds(view, quorum) for key, view in views.items()
    }

    pending: dict[bytes, np.ndarray] = {}
    for clouds in view_clouds.values():
        for cloud in clouds:
            cloud_key = cloud.tobytes()
            if cloud_key not in point_memo and cloud_key not in pending:
                pending[cloud_key] = cloud
    if pending:
        try:
            answers = chooser.resolve_multi(list(pending.values()))
            point_memo.update(zip(pending.keys(), answers))
        except Exception:  # noqa: BLE001 — re-solve per query for attribution
            for cloud_key, cloud in pending.items():
                try:
                    point_memo[cloud_key] = chooser.choose(cloud)
                except EmptyIntersectionError:
                    point_memo[cloud_key] = None
                except Exception as error:  # noqa: BLE001
                    point_memo[cloud_key] = _LoudFailure(error)

    updates: dict[bytes, np.ndarray | Exception] = {}
    for key, clouds in view_clouds.items():
        chosen: list[np.ndarray] = []
        failure: Exception | None = None
        for cloud in clouds:
            answer = point_memo[cloud.tobytes()]
            if isinstance(answer, _LoudFailure):
                failure = answer.error
                break
            if answer is None:
                # Same message SafeAreaCalculator.choose raises per query.
                failure = EmptyIntersectionError(
                    f"Gamma is empty for |Y|={quorum}, f={fault_bound}, d={dimension}"
                )
                break
            chosen.append(answer)
        updates[key] = failure if failure is not None else restricted_round_reduce(chosen)
    return updates


class _LoudFailure:
    """A non-emptiness solver failure memoised for faithful re-raising."""

    def __init__(self, error: Exception) -> None:
        self.error = error


def _finish_restricted_trial(trial: _LiveTrial) -> TrialResult:
    registry = trial.registry
    decisions = {
        process_id: np.asarray(trial.state[process_id], dtype=float)
        for process_id in registry.honest_ids
    }
    try:
        report = _verdict(registry, decisions, epsilon=trial.spec.epsilon)
    except Exception as error:  # noqa: BLE001 — failures are campaign data
        return _error_result(trial.spec, error)
    return _result_row(
        trial.spec,
        registry,
        decisions,
        report,
        rounds=trial.total_rounds,
        messages_sent=trial.messages_sent,
        messages_dropped=trial.messages_dropped,
        state_histories=trial.histories if trial.spec.record_history else None,
    )
