"""Asyncio HTTP/1.1 front end for :class:`~repro.server.service.CampaignService`.

Stdlib-only by design (``asyncio.start_server`` + hand-rolled HTTP/1.1):
the reproduction must stay installable with numpy/scipy alone, so the serving
layer cannot take a framework dependency.  The protocol support is scoped to
what the resources need — ``GET``/``POST``, JSON bodies, query strings,
``If-None-Match`` revalidation, and chunked NDJSON streaming — with
**keep-alive** connection semantics: each connection serves a loop of
requests until the client sends ``Connection: close`` (or speaks HTTP/1.0
without ``keep-alive``), the idle timeout expires between requests, the
per-connection request cap is reached, or an error leaves the stream in an
unknown framing state.  Chunked responses are self-delimiting, so even
NDJSON streams hand the socket back for the next request when they finish
cleanly.

Resources::

    GET  /healthz                     liveness + service bounds
    GET  /metrics                     accounting + run states + pool/telemetry
                                      (``?format=prometheus`` or an Accept
                                      header naming text exposition switches
                                      to the Prometheus v0.0.4 text format)
    GET  /store/stats                 store row/claim counters
    GET  /store/claims                outstanding claims (age, owner)
    GET  /store/query?...             filtered trial rows (ETag)
    GET  /store/aggregate?group_by=.. grouped outcome counters (ETag)
    GET  /store/export?...            NDJSON row export (ETag, streamed)
    POST /campaigns                   submit a campaign -> 202 {run_id, ...}
    GET  /campaigns                   status of every run this process knows
    GET  /campaigns/{run_id}          one run's status snapshot
    GET  /campaigns/{run_id}/rows     NDJSON row stream (replay + live tail)
    POST /campaigns/{run_id}/cancel   cooperative cancellation

Identity is the ``X-Api-Key`` header (default ``"anonymous"``) — accounting,
not authentication.  Store-read endpoints honour ``If-None-Match`` against
an ETag derived from the matching rows' content keys; the service caches the
digest per store generation, so an unchanged store answers repeated polls
with bodyless 304s in O(1).  Blocking store and service calls run in the
default executor (on pooled per-thread store handles), keeping the event
loop free to accept traffic while sessions compute; the accounting counters
are a plain in-memory lock and are bumped inline on the loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from typing import Any, Callable, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import ConfigurationError
from repro.obs.registry import get_registry
from repro.server.service import CampaignService, ServiceError
from repro.store.keys import ENGINE_VERSION
from repro.store.query import TrialFilter

__all__ = ["HttpError", "RequestHandler", "serve", "run_server"]

#: Seconds a keep-alive connection may sit idle between requests before the
#: server closes it.
IDLE_TIMEOUT_SECONDS = 30.0

#: Requests served on one connection before the server closes it (bounds how
#: long one client can pin a connection's resources).
MAX_REQUESTS_PER_CONNECTION = 1000

#: Fallback wakeup for live row streams.  Streams are push-notified on every
#: committed row (``RunHandle`` waiters via ``loop.call_soon_threadsafe``),
#: so this only bounds the stall after a lost wakeup — it is a safety net,
#: not a poll interval.
STREAM_WAIT_FALLBACK_SECONDS = 5.0

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_LINES = 100

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Prometheus text exposition content type (v0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# Routes the latency histogram may label.  Unknown paths collapse to
# "other" so a scanner probing random URLs cannot explode label cardinality.
_KNOWN_ROUTES = frozenset(
    {
        "/",
        "/healthz",
        "/metrics",
        "/store/stats",
        "/store/claims",
        "/store/query",
        "/store/aggregate",
        "/store/export",
        "/campaigns",
    }
)

_HTTP_REQUESTS = get_registry().counter(
    "repro_http_requests_total",
    "HTTP requests dispatched, by normalised route.",
    labelnames=("route",),
)
_HTTP_LATENCY = get_registry().histogram(
    "repro_http_request_seconds",
    "Request handling latency (parse excluded, streaming included), by route.",
    labelnames=("route",),
)
_HTTP_KEEPALIVE_REUSE = get_registry().counter(
    "repro_http_keepalive_reuse_total",
    "Requests served on an already-used keep-alive connection.",
)
_HTTP_NOT_MODIFIED = get_registry().counter(
    "repro_http_not_modified_total",
    "Conditional requests answered with a bodyless 304, by route.",
    labelnames=("route",),
)
_HTTP_STREAMS = get_registry().counter(
    "repro_http_ndjson_streams_total",
    "Chunked NDJSON streaming responses started, by route.",
    labelnames=("route",),
)


def _wants_prometheus(request: "Request") -> bool:
    """Content negotiation for ``/metrics``: query param wins, then Accept.

    ``?format=prometheus`` (or ``json``) is explicit; otherwise an Accept
    header naming a text exposition type selects Prometheus, and the JSON
    payload remains the default for untyped clients.
    """
    explicit = request.param("format")
    if explicit is not None:
        return explicit == "prometheus"
    accept = request.headers.get("accept", "")
    return "application/openmetrics-text" in accept or "text/plain" in accept


def _route_label(path: str) -> str:
    """Normalise a request path to a bounded-cardinality route label."""
    path = path.rstrip("/") or "/"
    if path.startswith("/campaigns/"):
        tail = path.split("/")[3:]
        suffix = tail[0] if tail else ""
        if suffix in ("rows", "cancel"):
            return f"/campaigns/{{run_id}}/{suffix}"
        return "/campaigns/{run_id}" if not tail else "other"
    return path if path in _KNOWN_ROUTES else "other"


class HttpError(Exception):
    """Request failure carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _ConnectionState:
    """Per-request connection bookkeeping shared with response writers.

    ``keep_alive`` is the decision for *this* response's ``Connection:``
    header; ``response_started`` flips once any bytes of a (possibly
    streaming) response hit the socket, after which an error can no longer
    be answered in-band — the connection must close instead.
    """

    def __init__(self, keep_alive: bool) -> None:
        self.keep_alive = keep_alive
        self.response_started = False

    @property
    def close(self) -> bool:
        return not self.keep_alive


class Request:
    """One parsed HTTP request (method, path, query, headers, JSON body)."""

    def __init__(
        self,
        method: str,
        path: str,
        query: Mapping[str, list[str]],
        headers: Mapping[str, str],
        body: bytes,
        http_version: str = "HTTP/1.1",
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.http_version = http_version

    @property
    def api_key(self) -> str:
        return self.headers.get("x-api-key", "anonymous") or "anonymous"

    @property
    def keep_alive(self) -> bool:
        """The client's connection-persistence preference (RFC 9112 §9.3)."""
        connection = self.headers.get("connection", "").lower()
        tokens = {token.strip() for token in connection.split(",") if token.strip()}
        if "close" in tokens:
            return False
        if self.http_version == "HTTP/1.0":
            return "keep-alive" in tokens
        return True

    def param(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[0] if values else default

    def int_param(self, name: str, default: int | None = None) -> int | None:
        raw = self.param(name)
        if raw is None:
            return default
        try:
            return int(raw)
        except ValueError:
            raise HttpError(400, f"query parameter {name!r} must be an integer, got {raw!r}")

    def json_body(self) -> Any:
        if not self.body:
            raise HttpError(400, "request body must be JSON (got an empty body)")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as error:
            raise HttpError(400, f"request body is not valid JSON: {error}")


async def _read_request(
    reader: asyncio.StreamReader, idle_timeout: float | None = None
) -> Request | None:
    """Parse one request; ``None`` on EOF or idle timeout (close quietly)."""
    try:
        if idle_timeout is None:
            request_line = await reader.readline()
        else:
            request_line = await asyncio.wait_for(reader.readline(), idle_timeout)
    except (ConnectionError, asyncio.IncompleteReadError, asyncio.TimeoutError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {request_line!r}")
    method, target, version = parts
    headers: dict[str, str] = {}
    for _ in range(_MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many request headers")
    if "transfer-encoding" in headers:
        # The parser only frames Content-Length bodies; silently ignoring a
        # chunked body would desynchronise the connection on the next read.
        raise HttpError(
            400,
            "Transfer-Encoding request bodies are not supported; "
            "send a Content-Length body",
        )
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            size = int(length)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length: {length!r}")
        if size < 0:
            raise HttpError(400, f"Content-Length must be non-negative, got {size}")
        if size > _MAX_BODY_BYTES:
            raise HttpError(413, f"request body exceeds {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(size)
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=split.path,
        query=parse_qs(split.query),
        headers=headers,
        body=body,
        http_version=version.upper(),
    )


def _response_head(status: int, headers: Mapping[str, str], close: bool) -> bytes:
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    lines.append("connection: close" if close else "connection: keep-alive")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def _send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    extra_headers: Mapping[str, str] | None = None,
    close: bool = True,
) -> None:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    headers = {
        "content-type": "application/json",
        "content-length": str(len(body)),
        **(extra_headers or {}),
    }
    writer.write(_response_head(status, headers, close) + body)
    await writer.drain()


async def _send_empty(
    writer: asyncio.StreamWriter,
    status: int,
    extra_headers: Mapping[str, str] | None = None,
    close: bool = True,
) -> None:
    headers = {"content-length": "0", **(extra_headers or {})}
    writer.write(_response_head(status, headers, close))
    await writer.drain()


async def _send_text(
    writer: asyncio.StreamWriter,
    status: int,
    text: str,
    content_type: str = "text/plain; charset=utf-8",
    close: bool = True,
) -> None:
    body = text.encode("utf-8")
    headers = {"content-type": content_type, "content-length": str(len(body))}
    writer.write(_response_head(status, headers, close) + body)
    await writer.drain()


class _ChunkedWriter:
    """Chunked transfer encoding over a StreamWriter (for NDJSON streams).

    Chunked framing is self-delimiting (the ``0\\r\\n\\r\\n`` trailer marks
    the end), so a cleanly-finished stream keeps the connection reusable;
    the shared :class:`_ConnectionState` records that the response started,
    which is what forces a close if the stream dies midway instead.
    """

    def __init__(self, writer: asyncio.StreamWriter, state: _ConnectionState) -> None:
        self._writer = writer
        self._state = state

    async def start(self, extra_headers: Mapping[str, str] | None = None) -> None:
        headers = {
            "content-type": "application/x-ndjson",
            "transfer-encoding": "chunked",
            **(extra_headers or {}),
        }
        self._state.response_started = True
        self._writer.write(_response_head(200, headers, self._state.close))
        await self._writer.drain()

    async def send_line(self, line: str) -> None:
        data = (line + "\n").encode("utf-8")
        self._writer.write(f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()


class RequestHandler:
    """Routes parsed requests onto a :class:`CampaignService`.

    One :meth:`handle_connection` call serves a whole keep-alive session:
    requests are read and dispatched in a loop until the client opts out,
    the idle timeout fires, the request cap is reached, or framing is lost.
    """

    def __init__(
        self, service: CampaignService, idle_timeout: float = IDLE_TIMEOUT_SECONDS
    ) -> None:
        self.service = service
        self.idle_timeout = idle_timeout

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            served = 0
            while served < MAX_REQUESTS_PER_CONNECTION:
                try:
                    request = await _read_request(reader, self.idle_timeout)
                except HttpError as error:
                    # Parse failure: the read offset is unknowable, so this
                    # response is the connection's last.
                    with contextlib.suppress(ConnectionError, RuntimeError):
                        await _send_json(
                            writer, error.status, {"error": str(error)}, close=True
                        )
                    return
                if request is None:
                    return  # EOF or idle timeout — close quietly
                served += 1
                if served > 1:
                    _HTTP_KEEPALIVE_REUSE.inc()
                state = _ConnectionState(
                    keep_alive=request.keep_alive
                    and served < MAX_REQUESTS_PER_CONNECTION
                )
                try:
                    await self.dispatch(request, writer, state)
                except (HttpError, ServiceError) as error:
                    if state.response_started:
                        return  # mid-stream failure: framing lost, close
                    # The request was fully read and the response is complete
                    # JSON — framing is intact, keep-alive may continue.
                    await _send_json(
                        writer, error.status, {"error": str(error)}, close=state.close
                    )
                except (ConnectionError, asyncio.IncompleteReadError):
                    return  # client went away mid-exchange; nothing to answer
                except Exception as error:  # noqa: BLE001 — last-resort 500
                    with contextlib.suppress(ConnectionError, RuntimeError):
                        if not state.response_started:
                            await _send_json(
                                writer,
                                500,
                                {"error": f"{type(error).__name__}: {error}"},
                                close=True,
                            )
                    return
                if state.close:
                    return
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def dispatch(
        self, request: Request, writer: asyncio.StreamWriter, state: _ConnectionState
    ) -> None:
        """Route one request, timing it under the per-route histogram.

        The timer covers handler work including streamed bodies; failures are
        observed too (the finally), so error latency is not invisible.
        """
        route = _route_label(request.path)
        _HTTP_REQUESTS.labels(route=route).inc()
        started = time.perf_counter()
        try:
            await self._route(request, writer, state)
        finally:
            _HTTP_LATENCY.labels(route=route).observe(time.perf_counter() - started)

    async def _route(
        self, request: Request, writer: asyncio.StreamWriter, state: _ConnectionState
    ) -> None:
        service = self.service
        # Plain-lock counter bump: cheap enough to run inline on the loop
        # (no executor round trip per request).
        service.record_request(request.api_key)
        method, path = request.method, request.path.rstrip("/") or "/"

        if method == "GET" and path == "/healthz":
            await _send_json(
                writer,
                200,
                {
                    "status": "ok",
                    "store": str(service.store_path),
                    "max_active": service.max_active,
                    "max_pending": service.max_pending,
                },
                close=state.close,
            )
            return
        if method == "GET" and path == "/metrics":
            if _wants_prometheus(request):
                text = await asyncio.to_thread(service.prometheus_metrics)
                await _send_text(
                    writer, 200, text, PROMETHEUS_CONTENT_TYPE, close=state.close
                )
                return
            await _send_json(
                writer, 200, await asyncio.to_thread(service.metrics), close=state.close
            )
            return
        if method == "GET" and path == "/store/stats":
            await _send_json(
                writer,
                200,
                await asyncio.to_thread(service.store_stats),
                close=state.close,
            )
            return
        if method == "GET" and path == "/store/claims":
            claims = await asyncio.to_thread(service.store_claims)
            await _send_json(
                writer,
                200,
                {"claims": claims, "count": len(claims)},
                close=state.close,
            )
            return
        if method == "GET" and path == "/store/query":
            await self._handle_query(request, writer, state)
            return
        if method == "GET" and path == "/store/aggregate":
            await self._handle_aggregate(request, writer, state)
            return
        if method == "GET" and path == "/store/export":
            await self._handle_export(request, writer, state)
            return
        if path == "/campaigns":
            if method == "POST":
                await self._handle_submit(request, writer, state)
                return
            if method == "GET":
                runs = await asyncio.to_thread(service.list_runs)
                await _send_json(writer, 200, {"runs": runs}, close=state.close)
                return
            raise HttpError(405, f"{method} not allowed on {path}")
        if path.startswith("/campaigns/"):
            await self._dispatch_run(request, writer, path, state)
            return
        raise HttpError(404, f"no resource at {path}")

    # -- store reads ---------------------------------------------------------

    def _trial_filter(self, request: Request) -> TrialFilter:
        try:
            return TrialFilter(
                protocol=request.param("protocol"),
                workload=request.param("workload"),
                adversary=request.param("adversary"),
                scheduler=request.param("scheduler"),
                status=request.param("status"),
                dimension=request.int_param("dimension"),
                fault_bound=request.int_param("fault_bound"),
                process_count=request.int_param("process_count"),
            )
        except ConfigurationError as error:
            raise HttpError(400, str(error))

    async def _revalidate(
        self, request: Request, where: Mapping[str, Any] | None
    ) -> tuple[str, bool]:
        """Compute the ETag for ``where``; True means the client's copy is current.

        Amortised O(1): the service caches digests per store generation, so
        while the store is unchanged this is a dictionary hit — no row scan.
        """
        etag = await asyncio.to_thread(self.service.etag_for, where)
        return etag, request.headers.get("if-none-match") == etag

    async def _handle_query(
        self, request: Request, writer: asyncio.StreamWriter, state: _ConnectionState
    ) -> None:
        trial_filter = self._trial_filter(request)
        limit = request.int_param("limit")
        if limit is not None and limit < 1:
            raise HttpError(400, "limit must be a positive integer")
        etag, current = await self._revalidate(request, trial_filter.to_where())
        if current:
            _HTTP_NOT_MODIFIED.labels(route="/store/query").inc()
            await _send_empty(writer, 304, {"etag": etag}, close=state.close)
            return
        rows = await asyncio.to_thread(self.service.query_rows, trial_filter, limit)
        await _send_json(
            writer,
            200,
            {"rows": rows, "count": len(rows)},
            {"etag": etag},
            close=state.close,
        )

    async def _handle_aggregate(
        self, request: Request, writer: asyncio.StreamWriter, state: _ConnectionState
    ) -> None:
        raw_group = request.param("group_by", "protocol")
        group_by = tuple(column for column in raw_group.split(",") if column)
        if not group_by:
            raise HttpError(400, "group_by must name at least one column")
        trial_filter = self._trial_filter(request)
        etag, current = await self._revalidate(request, trial_filter.to_where())
        if current:
            _HTTP_NOT_MODIFIED.labels(route="/store/aggregate").inc()
            await _send_empty(writer, 304, {"etag": etag}, close=state.close)
            return
        try:
            rows = await asyncio.to_thread(self.service.aggregate, group_by, trial_filter)
        except ConfigurationError as error:
            raise HttpError(400, str(error))
        await _send_json(
            writer,
            200,
            {"rows": rows, "count": len(rows)},
            {"etag": etag},
            close=state.close,
        )

    async def _handle_export(
        self, request: Request, writer: asyncio.StreamWriter, state: _ConnectionState
    ) -> None:
        """Stream the export in bounded pages: constant memory, immediate
        time-to-first-byte, no store cursor held across socket writes."""
        where = self._trial_filter(request).to_where()
        where["engine_version"] = request.param("engine_version", ENGINE_VERSION)
        etag, current = await self._revalidate(request, where)
        if current:
            _HTTP_NOT_MODIFIED.labels(route="/store/export").inc()
            await _send_empty(writer, 304, {"etag": etag}, close=state.close)
            return
        stream = _ChunkedWriter(writer, state)
        await stream.start({"etag": etag})
        _HTTP_STREAMS.labels(route="/store/export").inc()
        sent = 0
        after_key: str | None = None
        while True:
            lines, after_key = await asyncio.to_thread(
                self.service.export_batch, where, after_key
            )
            if not lines:
                break
            for line in lines:
                await stream.send_line(line)
            sent += len(lines)
        await stream.finish()
        self.service.record_rows(request.api_key, sent)

    # -- campaign resources --------------------------------------------------

    async def _handle_submit(
        self, request: Request, writer: asyncio.StreamWriter, state: _ConnectionState
    ) -> None:
        payload = request.json_body()
        handle = await asyncio.to_thread(self.service.submit, payload, request.api_key)
        self.service.record_campaigns(request.api_key)
        await _send_json(
            writer,
            202,
            {
                "run_id": handle.run_id,
                "name": handle.session.name,
                "trials": len(handle.session.specs),
                "status_url": f"/campaigns/{handle.run_id}",
                "rows_url": f"/campaigns/{handle.run_id}/rows",
                "cancel_url": f"/campaigns/{handle.run_id}/cancel",
            },
            close=state.close,
        )

    async def _dispatch_run(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        path: str,
        state: _ConnectionState,
    ) -> None:
        parts = path.split("/")[2:]  # ["<run_id>"] or ["<run_id>", "rows"|"cancel"]
        run_id = parts[0]
        tail = parts[1] if len(parts) > 1 else ""
        if len(parts) > 2 or tail not in ("", "rows", "cancel"):
            raise HttpError(404, f"no resource at {path}")
        if tail == "" and request.method == "GET":
            await _send_json(
                writer,
                200,
                await asyncio.to_thread(self.service.status, run_id),
                close=state.close,
            )
            return
        if tail == "cancel" and request.method == "POST":
            await _send_json(
                writer,
                200,
                await asyncio.to_thread(self.service.cancel, run_id),
                close=state.close,
            )
            return
        if tail == "rows" and request.method == "GET":
            await self._stream_rows(request, writer, run_id, state)
            return
        raise HttpError(405, f"{request.method} not allowed on {path}")

    async def _stream_rows(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        run_id: str,
        state: _ConnectionState,
    ) -> None:
        """NDJSON row stream: replay the buffered rows, then follow live.

        Rows are written as the session commits them, so a client watching a
        mixed hit/miss campaign sees the cached prefix immediately and
        executed rows arrive unit by unit — well before the campaign
        finishes.  The live tail is **event-driven**: a waiter registered on
        the :class:`~repro.server.service.RunHandle` is woken through
        ``loop.call_soon_threadsafe`` the moment the session commits a row,
        so there is no poll interval between a commit and the bytes leaving
        the socket (a bounded fallback timeout guards against lost wakeups).
        ``?cancel_on_disconnect=1`` ties the session's lifetime to this
        stream: if the client goes away, the run is cancelled (claims
        released, store left resumable).
        """
        handle = self.service.get(run_id)
        cancel_on_disconnect = request.param("cancel_on_disconnect") in ("1", "true", "yes")
        stream = _ChunkedWriter(writer, state)
        sent = 0
        loop = asyncio.get_running_loop()
        try:
            await stream.start({"x-run-id": run_id})
            _HTTP_STREAMS.labels(route="/campaigns/{run_id}/rows").inc()
            while True:
                # Register the waiter *before* snapshotting: a row appended
                # after the snapshot wakes the event, so nothing is missed.
                event = asyncio.Event()
                handle.add_waiter(loop, event)
                try:
                    lines, done = handle.snapshot(sent)
                    for line in lines:
                        await stream.send_line(line)
                    sent += len(lines)
                    if done and not lines:
                        break
                    if not lines:
                        with contextlib.suppress(asyncio.TimeoutError):
                            await asyncio.wait_for(
                                event.wait(), STREAM_WAIT_FALLBACK_SECONDS
                            )
                finally:
                    handle.discard_waiter(loop, event)
            await stream.finish()
        except (ConnectionError, asyncio.CancelledError):
            if cancel_on_disconnect:
                handle.session.cancel()
            raise
        finally:
            self.service.record_rows(request.api_key, sent)


async def serve(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 8321,
    ready: Callable[[str, int], None] | None = None,
    idle_timeout: float = IDLE_TIMEOUT_SECONDS,
) -> None:
    """Serve until cancelled.  ``ready`` is called with the bound address."""
    handler = RequestHandler(service, idle_timeout=idle_timeout)
    server = await asyncio.start_server(handler.handle_connection, host=host, port=port)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready(bound[0], bound[1])
    try:
        async with server:
            await server.serve_forever()
    finally:
        service.shutdown()


def run_server(
    store_path: str,
    host: str = "127.0.0.1",
    port: int = 8321,
    backend: str = "auto",
    workers: int = 1,
    max_active: int = 2,
    max_pending: int = 8,
    ready: Callable[[str, int], None] | None = None,
    idle_timeout: float = IDLE_TIMEOUT_SECONDS,
    trace_dir: str | None = None,
) -> None:
    """Blocking convenience entry point (the CLI's ``repro serve``)."""
    service = CampaignService(
        store_path,
        backend=backend,
        workers=workers,
        max_active=max_active,
        max_pending=max_pending,
        trace_dir=trace_dir,
    )
    try:
        asyncio.run(serve(service, host=host, port=port, ready=ready, idle_timeout=idle_timeout))
    except KeyboardInterrupt:
        pass
