"""Async HTTP serving layer over the campaign sessions and the results store.

ROADMAP item 2 made concrete: the content-addressed warehouse plus the
session-backed execution stack, served over HTTP.  Two halves:

* :class:`~repro.server.service.CampaignService` — transport-independent
  core: bounded campaign submission onto
  :class:`~repro.engine.session.CampaignSession` worker threads, run-id
  addressed status/cancel/row-log access, store query/aggregate/export
  reads, content-hash ETags, and per-API-key accounting.
* :mod:`repro.server.http` — a stdlib-only asyncio HTTP/1.1 front end
  (``repro serve``) exposing the service: JSON resources, ``If-None-Match``
  revalidation, and chunked NDJSON streams for campaign rows and store
  exports.

See ``docs/ARCHITECTURE.md`` (serving layer section) for the resource map
and the cancellation/validation semantics.
"""

from repro.server.http import RequestHandler, run_server, serve
from repro.server.service import (
    CampaignService,
    RunHandle,
    ServiceBusy,
    ServiceError,
    UnknownRun,
)

__all__ = [
    "CampaignService",
    "RequestHandler",
    "RunHandle",
    "ServiceBusy",
    "ServiceError",
    "UnknownRun",
    "run_server",
    "serve",
]
