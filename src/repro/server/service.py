"""Campaign service: sessions, bounded execution, accounting, ETags.

This is the transport-independent half of the serving layer (ROADMAP item
2): everything the HTTP front end in :mod:`repro.server.http` does is a thin
translation onto :class:`CampaignService`, so the service is testable without
sockets and reusable under a different transport.

Responsibilities:

* **Submission** — :meth:`CampaignService.submit` validates a campaign
  declaration (the same ``{"grid": ...}`` / ``{"trials": ...}`` schema as
  campaign files, via :meth:`~repro.engine.campaign.Campaign.from_payload`),
  wraps it in a :class:`~repro.engine.session.CampaignSession` against the
  service's results store, and runs it on a **bounded** thread pool: at most
  ``max_active`` sessions execute concurrently, at most ``max_pending`` wait,
  and anything beyond that is refused with :class:`ServiceBusy` (HTTP 429).
  The store turns every submission into an incremental computation — cached
  trials stream back immediately, only the misses execute.
* **Observation** — each run is addressed by its session ``run_id``:
  :meth:`status` snapshots, :meth:`cancel` for cooperative cancellation, and
  :meth:`RunHandle.snapshot` for NDJSON row streaming (rows are buffered as
  serialised lines, so late subscribers replay from the start and live
  subscribers follow the commit frontier).
* **Store reads** — :meth:`query_rows`, :meth:`aggregate`,
  :meth:`export_batch`, :meth:`store_stats`, :meth:`store_claims` run on
  **pooled per-thread store handles** (one long-lived connection per reader
  thread, closed at shutdown) instead of opening a fresh store per call,
  and query/aggregate bodies are served from a bounded LRU keyed by the
  store's **generation counter** — any commit bumps the generation, so
  stale cached bodies are unreachable rather than explicitly invalidated.
* **Validation** — :meth:`etag_for` derives an entity tag from the sorted
  content keys matching a filter.  Keys are content hashes of the trial
  specs (salted with the engine version), so the tag changes exactly when
  the matching result set changes; repeated ``GET`` s revalidate with
  ``If-None-Match`` and get 304s while the store is unchanged.  Digests are
  cached per ``(generation, filter)``, making revalidation amortised O(1)
  in store size.
* **Accounting** — per-API-key counters (requests, campaigns submitted,
  rows streamed), surfaced by the ``/metrics`` resource.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.engine.campaign import Campaign
from repro.engine.pool import POOL_CHOICES, pool_metrics, shutdown_pools
from repro.engine.session import ENGINE_CHOICES, CampaignSession, RowEvent
from repro.exceptions import ConfigurationError
from repro.obs.registry import get_registry, render_prometheus, snapshot_jsonable
from repro.obs.trace import TraceRecorder
from repro.store.backend import open_store
from repro.store.query import TrialFilter, aggregate_store, query_store

__all__ = [
    "CampaignService",
    "RunHandle",
    "ServiceBusy",
    "ServiceError",
    "UnknownRun",
]


class ServiceError(Exception):
    """Client error in a service call (maps to HTTP 400)."""

    status = 400


class UnknownRun(ServiceError):
    """No run with the requested ``run_id`` (maps to HTTP 404)."""

    status = 404


class ServiceBusy(ServiceError):
    """Submission refused: the in-flight session bound is reached (HTTP 429)."""

    status = 429


@dataclass
class RunHandle:
    """One submitted campaign: its session plus the replayable row log.

    Row lines are the session's committed rows serialised with
    ``TrialResult.to_json()`` — exactly the CLI's ``--jsonl`` line format —
    appended in spec order as the session emits them.  ``snapshot`` gives a
    consistent (lines-after-offset, finished) view, which is all a streaming
    subscriber needs: replay what exists, then follow until ``finished``.

    Live subscribers are **push-notified**: a streaming coroutine registers
    an ``(event loop, asyncio.Event)`` waiter and the session's worker thread
    wakes it through ``loop.call_soon_threadsafe`` the moment a row commits
    (or the run retires) — no poll interval between a commit and the bytes
    leaving the socket.
    """

    run_id: str
    session: CampaignSession
    api_key: str
    submitted_at: float
    _lines: list[str] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _waiters: list[tuple[Any, Any]] = field(default_factory=list)
    #: Set when the worker thread has fully retired the session (its final
    #: state is readable and no more rows will arrive).
    finished: threading.Event = field(default_factory=threading.Event)

    def append_line(self, line: str) -> None:
        with self._lock:
            self._lines.append(line)
            waiters, self._waiters = self._waiters, []
        self._wake(waiters)

    def mark_finished(self) -> None:
        """Flip to finished and wake every live subscriber (worker thread)."""
        self.finished.set()
        with self._lock:
            waiters, self._waiters = self._waiters, []
        self._wake(waiters)

    @staticmethod
    def _wake(waiters: list[tuple[Any, Any]]) -> None:
        for loop, event in waiters:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # the subscriber's loop already shut down

    def add_waiter(self, loop: Any, event: Any) -> None:
        """Register a one-shot wakeup for the next row/finish transition."""
        with self._lock:
            self._waiters.append((loop, event))
        if self.finished.is_set():
            # The run retired between the caller's snapshot and registration;
            # wake immediately so the subscriber re-checks instead of waiting.
            event.set()

    def discard_waiter(self, loop: Any, event: Any) -> None:
        with self._lock:
            try:
                self._waiters.remove((loop, event))
            except ValueError:
                pass  # already consumed by a wake

    def snapshot(self, start: int = 0) -> tuple[list[str], bool]:
        """Row lines from ``start`` onward, plus whether the run is finished.

        The finished flag is read *before* the lines are copied: a True flag
        with an empty tail means the stream is genuinely drained (rows only
        ever get appended, never removed).
        """
        done = self.finished.is_set()
        with self._lock:
            return self._lines[start:], done

    def status_dict(self) -> dict[str, Any]:
        status = self.session.status().to_dict()
        status["submitted_at"] = self.submitted_at
        status["rows_available"] = len(self._lines)
        status["api_key"] = self.api_key
        return status


class CampaignService:
    """Sessions + store reads behind one bounded, accounted facade."""

    #: Bound on cached ``(generation, filter) → ETag`` digests.
    ETAG_CACHE_SIZE = 256
    #: Bound on cached query/aggregate response bodies (entry count, not
    #: bytes — entries die with the generation that keyed them anyway).
    RESPONSE_CACHE_SIZE = 64
    #: Rows per export page (one pooled-store round trip each).
    EXPORT_BATCH = 512

    def __init__(
        self,
        store_path: str | Path,
        backend: str = "auto",
        workers: int = 1,
        max_active: int = 2,
        max_pending: int = 8,
        claim_wait_timeout: float = 60.0,
        trace_dir: str | Path | None = None,
    ) -> None:
        self.store_path = Path(store_path)
        self.backend = backend
        self.default_workers = workers
        self.max_active = max_active
        self.max_pending = max_pending
        self.claim_wait_timeout = claim_wait_timeout
        #: When set, every submitted run records a Chrome trace written to
        #: ``<trace_dir>/<run_id>.json`` as the run retires.
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self._executor = ThreadPoolExecutor(
            max_workers=max_active, thread_name_prefix="campaign-session"
        )
        self._runs: dict[str, RunHandle] = {}
        self._lock = threading.Lock()
        # Accounting has its own lock: counters are bumped inline on the
        # event loop (no executor hop), so they must never contend with the
        # run-table lock held across submissions and status scans.
        self._accounting_lock = threading.Lock()
        self._accounting: dict[str, dict[str, int]] = {}
        # Pooled read handles: one long-lived store per reader thread (SQLite
        # connections must not be shared across threads mid-statement), all
        # tracked for shutdown.  Opened lazily — the event loop's executor
        # and the session pool create threads on demand.
        self._thread_store = threading.local()
        self._pooled_stores: list[Any] = []
        self._pool_lock = threading.Lock()
        # Generation-keyed read caches (see etag_for / _cached_read).
        self._read_cache_lock = threading.Lock()
        self._etag_cache: "OrderedDict[tuple, str]" = OrderedDict()
        self._response_cache: "OrderedDict[tuple, Any]" = OrderedDict()
        # Create the store eagerly so the first query does not race the first
        # submission on schema creation, and a bad path fails at startup.
        open_store(self.store_path, backend=self.backend).close()

    # -- accounting ----------------------------------------------------------

    def record_request(self, api_key: str, *, rows: int = 0, campaigns: int = 0) -> None:
        """Bump the per-key counters (``api_key`` is already normalised).

        Cheap by design — a dict update under a dedicated lock — so the HTTP
        layer calls it inline on the event loop instead of paying two
        ``asyncio.to_thread`` hops per request.
        """
        with self._accounting_lock:
            counters = self._accounting.setdefault(
                api_key, {"requests": 0, "campaigns": 0, "rows_streamed": 0}
            )
            counters["requests"] += 1
            counters["campaigns"] += campaigns
            counters["rows_streamed"] += rows

    def record_rows(self, api_key: str, rows: int) -> None:
        with self._accounting_lock:
            counters = self._accounting.setdefault(
                api_key, {"requests": 0, "campaigns": 0, "rows_streamed": 0}
            )
            counters["rows_streamed"] += rows

    def record_campaigns(self, api_key: str, campaigns: int = 1) -> None:
        with self._accounting_lock:
            counters = self._accounting.setdefault(
                api_key, {"requests": 0, "campaigns": 0, "rows_streamed": 0}
            )
            counters["campaigns"] += campaigns

    def metrics(self) -> dict[str, Any]:
        with self._accounting_lock:
            per_key = {key: dict(counters) for key, counters in self._accounting.items()}
        with self._lock:
            states: dict[str, int] = {}
            for handle in self._runs.values():
                state = handle.session.state
                states[state] = states.get(state, 0) + 1
        return {
            "api_keys": per_key,
            "runs": states,
            # Worker-pool state was historically absent from this payload;
            # crash recoveries and seat occupancy live here now so the JSON
            # and Prometheus views agree.
            "pool": pool_metrics(),
            "telemetry": snapshot_jsonable(get_registry().snapshot()),
        }

    def prometheus_metrics(self) -> str:
        """The process registry in Prometheus text exposition format."""
        return render_prometheus(get_registry())

    # -- campaign lifecycle --------------------------------------------------

    def _in_flight(self) -> int:
        return sum(1 for handle in self._runs.values() if not handle.finished.is_set())

    def submit(self, payload: Mapping[str, Any], api_key: str = "anonymous") -> RunHandle:
        """Validate and enqueue one campaign; returns its :class:`RunHandle`.

        ``payload`` is ``{"campaign": <declaration>, "workers"?, "engine"?,
        "pool"?, "resume"?}`` — the declaration is the campaign-file schema.
        Raises :class:`ServiceBusy` once ``max_active + max_pending`` runs
        are in flight (the bound that keeps one tenant from queueing
        unbounded compute), :class:`ServiceError` on malformed payloads.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        declaration = payload.get("campaign")
        if declaration is None:
            raise ServiceError("request body needs a 'campaign' declaration")
        try:
            campaign = Campaign.from_payload(declaration, source="request body")
        except ConfigurationError as error:
            raise ServiceError(str(error)) from error
        workers = payload.get("workers", self.default_workers)
        engine = payload.get("engine", "auto")
        pool = payload.get("pool", "persistent")
        resume = payload.get("resume", True)
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise ServiceError(f"'workers' must be a positive integer, got {workers!r}")
        if engine not in ENGINE_CHOICES:
            raise ServiceError(f"unknown engine {engine!r}; known: {', '.join(ENGINE_CHOICES)}")
        if pool not in POOL_CHOICES:
            raise ServiceError(f"unknown pool {pool!r}; known: {', '.join(POOL_CHOICES)}")
        if not isinstance(resume, bool):
            raise ServiceError(f"'resume' must be a boolean, got {resume!r}")

        with self._lock:
            if self._in_flight() >= self.max_active + self.max_pending:
                raise ServiceBusy(
                    f"{self._in_flight()} campaigns in flight "
                    f"(bound: {self.max_active} active + {self.max_pending} pending); "
                    "retry after a run finishes"
                )
            # The session opens its own store connection inside the worker
            # thread (SQLite connections are thread-bound).
            session = CampaignSession(
                campaign,
                workers=workers,
                engine=engine,
                store=self.store_path,
                reuse_cached=resume,
                pool=pool,
                claim_wait_timeout=self.claim_wait_timeout,
                trace=TraceRecorder() if self.trace_dir is not None else None,
            )
            handle = RunHandle(
                run_id=session.run_id,
                session=session,
                api_key=api_key,
                submitted_at=time.time(),
            )
            self._runs[handle.run_id] = handle
        self._executor.submit(self._drive, handle)
        return handle

    def _drive(self, handle: RunHandle) -> None:
        """Worker-thread body: run the session, logging rows as NDJSON lines."""
        try:
            for event in handle.session.events():
                if isinstance(event, RowEvent):
                    handle.append_line(event.result.to_json())
        except BaseException:
            # The session already recorded the failure in its status; the
            # handle must still flip to finished so streams terminate.
            pass
        finally:
            handle.mark_finished()
            if self.trace_dir is not None and handle.session.trace is not None:
                try:
                    handle.session.trace.write(self.trace_dir / f"{handle.run_id}.json")
                except OSError:
                    pass  # tracing is best-effort; the run itself succeeded

    def get(self, run_id: str) -> RunHandle:
        with self._lock:
            handle = self._runs.get(run_id)
        if handle is None:
            raise UnknownRun(f"unknown run_id {run_id!r}")
        return handle

    def status(self, run_id: str) -> dict[str, Any]:
        return self.get(run_id).status_dict()

    def cancel(self, run_id: str) -> dict[str, Any]:
        handle = self.get(run_id)
        handle.session.cancel()
        return handle.status_dict()

    def list_runs(self) -> list[dict[str, Any]]:
        with self._lock:
            handles = list(self._runs.values())
        return [handle.status_dict() for handle in handles]

    def shutdown(self, cancel_runs: bool = True) -> None:
        """Cancel in-flight sessions and retire the thread pool."""
        if cancel_runs:
            with self._lock:
                handles = list(self._runs.values())
            for handle in handles:
                handle.session.cancel()
        self._executor.shutdown(wait=True)
        shutdown_pools()
        # Pooled read handles were opened with check_same_thread=False
        # exactly so this cross-thread close is legal; reader threads are
        # quiescent by now (the loop and the session executor are retired).
        with self._pool_lock:
            stores, self._pooled_stores = self._pooled_stores, []
        self._thread_store = threading.local()
        for store in stores:
            try:
                store.close()
            except Exception:  # noqa: BLE001 — best-effort resource release
                pass

    # -- store reads ---------------------------------------------------------

    def _pooled_store(self):
        """This thread's long-lived read handle (opened on first use).

        Replaces the open-per-request pattern: a warm read no longer pays
        connection setup + schema DDL, just the query.  JSONL handles are
        refreshed against the on-disk generation so externally-committed
        rows become visible; SQLite sees committed state per statement.
        """
        store = getattr(self._thread_store, "store", None)
        if store is None:
            store = open_store(
                self.store_path, backend=self.backend, check_same_thread=False
            )
            self._thread_store.store = store
            with self._pool_lock:
                self._pooled_stores.append(store)
        store.refresh()
        return store

    def _cached_read(self, cache_key_tail: tuple, compute) -> Any:
        """Serve ``compute(store)`` through the generation-keyed LRU.

        The cache key is ``(generation, *cache_key_tail)``: any commit bumps
        the generation (in the writer's transaction), so stale bodies are
        simply unreachable — no explicit invalidation, correct across
        processes.  A result is only cached when the generation did not move
        during the read, so a racing write can never pin newer content under
        an older generation.
        """
        store = self._pooled_store()
        generation = store.generation()
        cache_key = (generation, *cache_key_tail)
        with self._read_cache_lock:
            if cache_key in self._response_cache:
                self._response_cache.move_to_end(cache_key)
                return self._response_cache[cache_key]
        value = compute(store)
        if store.generation() == generation:
            with self._read_cache_lock:
                self._response_cache[cache_key] = value
                while len(self._response_cache) > self.RESPONSE_CACHE_SIZE:
                    self._response_cache.popitem(last=False)
        return value

    @staticmethod
    def _where_key(where: Mapping[str, Any] | None) -> tuple:
        return tuple(sorted((where or {}).items()))

    def store_stats(self) -> dict[str, Any]:
        return self._pooled_store().stats()

    def store_claims(self) -> list[dict[str, Any]]:
        return self._pooled_store().list_claims()

    def etag_for(self, where: Mapping[str, Any] | None = None) -> str:
        """Entity tag for the result set matching ``where`` — amortised O(1).

        The tag hashes the sorted content keys of the matching rows.  Keys
        are content hashes of spec + engine version, so the tag is stable
        across processes and changes exactly when the matching set changes —
        rows added, deleted, or produced by a different engine revision.

        Digests are cached per ``(generation, where)``: while the store is
        unchanged, revalidation is a dictionary hit, not a row scan; the
        first request after a commit recomputes from the backend's key-only
        index scan (:meth:`~repro.store.backend.ResultStore.iter_keys` —
        row payloads are never deserialised).  The tag bytes are identical
        to the uncached computation, so clients never see a spurious
        invalidation.
        """
        store = self._pooled_store()
        generation = store.generation()
        cache_key = (generation, self._where_key(where))
        with self._read_cache_lock:
            cached = self._etag_cache.get(cache_key)
            if cached is not None:
                self._etag_cache.move_to_end(cache_key)
                return cached
        digest = hashlib.sha256()
        for key in store.iter_keys(where=dict(where) if where else None):
            digest.update(key.encode("ascii"))
            digest.update(b"\n")
        etag = f'"{digest.hexdigest()}"'
        if store.generation() == generation:
            with self._read_cache_lock:
                self._etag_cache[cache_key] = etag
                while len(self._etag_cache) > self.ETAG_CACHE_SIZE:
                    self._etag_cache.popitem(last=False)
        return etag

    def query_rows(
        self, trial_filter: TrialFilter, limit: int | None = None
    ) -> list[dict[str, Any]]:
        return self._cached_read(
            ("query", self._where_key(trial_filter.to_where()), limit),
            lambda store: [
                hit.to_row() for hit in query_store(store, trial_filter, limit=limit)
            ],
        )

    def aggregate(
        self, group_by: tuple[str, ...], trial_filter: TrialFilter
    ) -> list[dict[str, Any]]:
        return self._cached_read(
            ("aggregate", group_by, self._where_key(trial_filter.to_where())),
            lambda store: aggregate_store(
                store, group_by=group_by, trial_filter=trial_filter
            ),
        )

    def export_batch(
        self,
        where: Mapping[str, Any] | None = None,
        after_key: str | None = None,
        batch_size: int | None = None,
    ) -> tuple[list[str], str | None]:
        """One page of the NDJSON export: ``(lines, last_key_seen)``.

        Key-ordered pagination: pass the returned ``last_key_seen`` back as
        ``after_key`` until an empty page signals the end.  Each page is an
        independent bounded read, so the HTTP export streams with constant
        memory and immediate time-to-first-byte, and never holds a store
        cursor (or its locks) across socket writes.
        """
        store = self._pooled_store()
        limit = batch_size if batch_size is not None else self.EXPORT_BATCH
        lines: list[str] = []
        last_key = after_key
        for entry in store.iter_entries(
            where=dict(where) if where else None, after_key=after_key, limit=limit
        ):
            lines.append(json.dumps(entry.row, sort_keys=True))
            last_key = entry.key
        return lines, last_key

    def export_lines(self, where: Mapping[str, Any] | None = None) -> list[str]:
        """Stored rows as serialised JSONL lines (the CLI export format)."""
        store = self._pooled_store()
        return [
            json.dumps(entry.row, sort_keys=True)
            for entry in store.iter_entries(where=dict(where) if where else None)
        ]
