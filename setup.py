"""Shim for legacy editable installs (``pip install -e .``) in offline environments.

All project metadata lives in ``pyproject.toml``; this file only exists so pip
can fall back to the ``setup.py develop`` code path on machines without the
``wheel`` package (PEP 660 editable installs require it).
"""

from setuptools import setup

setup()
